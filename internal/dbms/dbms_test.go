package dbms

import (
	"strings"
	"testing"

	"ysmart/internal/datagen"
	"ysmart/internal/exec"
	"ysmart/internal/plan"
	"ysmart/internal/queries"
)

// loadWorkload fills a database with the standard workload tables.
func loadWorkload(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	cat := queries.Catalog()
	tpch, err := datagen.TPCH(datagen.DefaultTPCH())
	if err != nil {
		t.Fatal(err)
	}
	clicks, err := datagen.Clickstream(datagen.DefaultClicks())
	if err != nil {
		t.Fatal(err)
	}
	for name, rows := range tpch {
		schema, _ := cat.Table(name)
		db.Load(name, schema, rows)
	}
	for name, rows := range clicks {
		schema, _ := cat.Table(name)
		db.Load(name, schema, rows)
	}
	return db
}

func run(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	root, err := queries.Plan(sql)
	if err != nil {
		t.Fatalf("plan %q: %v", sql, err)
	}
	res, err := Execute(root, db)
	if err != nil {
		t.Fatalf("execute %q: %v", sql, err)
	}
	return res
}

func TestScanFilterProject(t *testing.T) {
	db := NewDatabase()
	schema, _ := queries.Catalog().Table("clicks")
	db.Load("clicks", schema, []exec.Row{
		{exec.Int(1), exec.Int(10), exec.Int(1), exec.Int(100)},
		{exec.Int(2), exec.Int(20), exec.Int(2), exec.Int(200)},
		{exec.Int(3), exec.Int(30), exec.Int(1), exec.Int(300)},
	})
	res := run(t, db, "SELECT uid, ts FROM clicks WHERE cid = 1")
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][0].I != 1 || res.Rows[1][0].I != 3 {
		t.Errorf("rows = %v", res.Rows)
	}
	if res.Stats.BytesScanned == 0 || res.Stats.RowsProcessed == 0 {
		t.Error("stats not collected")
	}
}

func TestAggregationAndHaving(t *testing.T) {
	db := NewDatabase()
	schema, _ := queries.Catalog().Table("clicks")
	db.Load("clicks", schema, []exec.Row{
		{exec.Int(1), exec.Int(1), exec.Int(1), exec.Int(1)},
		{exec.Int(2), exec.Int(2), exec.Int(1), exec.Int(2)},
		{exec.Int(3), exec.Int(3), exec.Int(2), exec.Int(3)},
	})
	res := run(t, db, "SELECT cid, count(*) AS n FROM clicks GROUP BY cid HAVING count(*) > 1")
	if len(res.Rows) != 1 || res.Rows[0][0].I != 1 || res.Rows[0][1].I != 2 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestSortDescAndLimit(t *testing.T) {
	db := NewDatabase()
	schema, _ := queries.Catalog().Table("clicks")
	db.Load("clicks", schema, []exec.Row{
		{exec.Int(1), exec.Int(1), exec.Int(1), exec.Int(10)},
		{exec.Int(2), exec.Int(2), exec.Int(1), exec.Int(30)},
		{exec.Int(3), exec.Int(3), exec.Int(2), exec.Int(20)},
	})
	res := run(t, db, "SELECT uid, ts FROM clicks ORDER BY ts DESC LIMIT 2")
	if len(res.Rows) != 2 || res.Rows[0][1].I != 30 || res.Rows[1][1].I != 20 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestJoinVariants(t *testing.T) {
	db := NewDatabase()
	cat := queries.Catalog()
	liSchema, _ := cat.Table("lineitem")
	ordSchema, _ := cat.Table("orders")
	db.Load("lineitem", liSchema, []exec.Row{
		{exec.Int(1), exec.Int(1), exec.Int(1), exec.Float(5), exec.Float(50), exec.Int(10), exec.Int(9)},
		{exec.Int(3), exec.Int(2), exec.Int(2), exec.Float(7), exec.Float(70), exec.Int(10), exec.Int(9)},
	})
	db.Load("orders", ordSchema, []exec.Row{
		{exec.Int(1), exec.Int(1), exec.Str("F"), exec.Float(100), exec.Int(1)},
		{exec.Int(2), exec.Int(2), exec.Str("O"), exec.Float(200), exec.Int(2)},
	})

	inner := run(t, db, "SELECT l_orderkey FROM lineitem, orders WHERE o_orderkey = l_orderkey")
	if len(inner.Rows) != 1 || inner.Rows[0][0].I != 1 {
		t.Errorf("inner = %v", inner.Rows)
	}

	left := run(t, db, `SELECT l_orderkey, o_orderkey FROM lineitem
		LEFT OUTER JOIN orders ON o_orderkey = l_orderkey`)
	if len(left.Rows) != 2 {
		t.Fatalf("left = %v", left.Rows)
	}
	var sawNull bool
	for _, r := range left.Rows {
		if r[0].I == 3 && r[1].IsNull() {
			sawNull = true
		}
	}
	if !sawNull {
		t.Errorf("left outer missing null extension: %v", left.Rows)
	}

	full := run(t, db, `SELECT l_orderkey, o_orderkey FROM lineitem
		FULL OUTER JOIN orders ON o_orderkey = l_orderkey`)
	if len(full.Rows) != 3 {
		t.Errorf("full = %v", full.Rows)
	}
}

func TestWorkloadQueriesExecute(t *testing.T) {
	db := loadWorkload(t)

	t.Run("Q-AGG", func(t *testing.T) {
		res := run(t, db, queries.QAGG)
		if len(res.Rows) != 5 { // five categories
			t.Errorf("rows = %d, want 5", len(res.Rows))
		}
		var total int64
		for _, r := range res.Rows {
			total += r[1].I
		}
		cfg := datagen.DefaultClicks()
		if want := int64(cfg.Users * cfg.ClicksPerUser); total != want {
			t.Errorf("total clicks = %d, want %d", total, want)
		}
	})

	t.Run("Q-CSA", func(t *testing.T) {
		res := run(t, db, queries.QCSA)
		if len(res.Rows) != 1 {
			t.Fatalf("rows = %v, want one (global average)", res.Rows)
		}
		avg := res.Rows[0][0]
		if avg.IsNull() {
			t.Fatal("Q-CSA average is NULL: generated data has no 1->2 pattern")
		}
		if f, _ := avg.AsFloat(); f < 0 {
			t.Errorf("average pageviews = %v, want >= 0", avg)
		}
	})

	t.Run("Q17", func(t *testing.T) {
		res := run(t, db, queries.Q17)
		if len(res.Rows) != 1 {
			t.Fatalf("rows = %v", res.Rows)
		}
		if res.Rows[0][0].IsNull() {
			t.Error("Q17 avg_yearly is NULL: no lineitem below 0.2*avg(quantity)")
		}
	})

	t.Run("Q18", func(t *testing.T) {
		res := run(t, db, queries.Q18)
		if len(res.Rows) == 0 {
			t.Fatal("Q18 returned no rows: raise order count or lower threshold")
		}
		if len(res.Rows) > 100 {
			t.Errorf("Q18 rows = %d, want <= 100 (LIMIT)", len(res.Rows))
		}
		// Sorted by o_totalprice DESC.
		for i := 1; i < len(res.Rows); i++ {
			prev, _ := res.Rows[i-1][4].AsFloat()
			cur, _ := res.Rows[i][4].AsFloat()
			if cur > prev {
				t.Fatalf("row %d out of order: %f > %f", i, cur, prev)
			}
		}
		// Every surviving group must have quantity sum > 300.
		for _, r := range res.Rows {
			if s, _ := r[5].AsFloat(); s <= 300 {
				t.Errorf("t_sum_quantity = %v, want > 300", r[5])
			}
		}
	})

	t.Run("Q21", func(t *testing.T) {
		res := run(t, db, queries.Q21)
		if len(res.Rows) == 0 {
			t.Fatal("Q21 subtree returned no rows")
		}
		if res.Schema.Cols[0].Name != "l_suppkey" {
			t.Errorf("schema = %s", res.Schema)
		}
	})
}

func TestQCSAHandComputedOracle(t *testing.T) {
	// A tiny hand-checkable click stream:
	// user 1: ts 10 cat1, ts 20 cat0, ts 30 cat0, ts 40 cat2  -> between the
	// cat1 page (ts1=10) and the first cat2 page (ts2=40) the user views
	// rows ts10,20,30,40 => count=4, pageview_count = 4-2 = 2.
	db := NewDatabase()
	schema, _ := queries.Catalog().Table("clicks")
	rows := []exec.Row{
		{exec.Int(1), exec.Int(1), exec.Int(1), exec.Int(10)},
		{exec.Int(1), exec.Int(2), exec.Int(0), exec.Int(20)},
		{exec.Int(1), exec.Int(3), exec.Int(0), exec.Int(30)},
		{exec.Int(1), exec.Int(4), exec.Int(2), exec.Int(40)},
	}
	db.Load("clicks", schema, rows)
	res := run(t, db, queries.QCSA)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
	got, _ := res.Rows[0][0].AsFloat()
	if got != 2 {
		t.Errorf("avg pageviews = %v, want 2", res.Rows[0][0])
	}
}

func TestQ17HandComputedOracle(t *testing.T) {
	db := NewDatabase()
	cat := queries.Catalog()
	liSchema, _ := cat.Table("lineitem")
	pSchema, _ := cat.Table("part")
	// Part 1: quantities 10, 30 -> avg 20, 0.2*avg = 4; no line below 4.
	// Part 2: quantities 2, 38 -> avg 20, threshold 4; line qty 2 passes
	// with extendedprice 700 -> sum 700 / 7.0 = 100.
	db.Load("lineitem", liSchema, []exec.Row{
		{exec.Int(1), exec.Int(1), exec.Int(1), exec.Float(10), exec.Float(100), exec.Int(1), exec.Int(1)},
		{exec.Int(2), exec.Int(1), exec.Int(1), exec.Float(30), exec.Float(300), exec.Int(1), exec.Int(1)},
		{exec.Int(3), exec.Int(2), exec.Int(1), exec.Float(2), exec.Float(700), exec.Int(1), exec.Int(1)},
		{exec.Int(4), exec.Int(2), exec.Int(1), exec.Float(38), exec.Float(380), exec.Int(1), exec.Int(1)},
	})
	db.Load("part", pSchema, []exec.Row{
		{exec.Int(1), exec.Str("a")},
		{exec.Int(2), exec.Str("b")},
	})
	res := run(t, db, queries.Q17)
	got, _ := res.Rows[0][0].AsFloat()
	if got != 100 {
		t.Errorf("avg_yearly = %v, want 100", res.Rows[0][0])
	}
}

func TestCostModelTime(t *testing.T) {
	cm := DefaultCostModel()
	s := Stats{BytesScanned: 600e6, RowsProcessed: 1e6}
	t1 := cm.Time(s)
	if t1 <= 0 {
		t.Fatal("time should be positive")
	}
	cm.Parallelism = 4
	if t4 := cm.Time(s); t4 >= t1 {
		t.Errorf("parallelism should shrink time: %f >= %f", t4, t1)
	}
	cm.Parallelism = 1
	cm.DataScale = 10
	if ts := cm.Time(s); ts <= t1 {
		t.Errorf("data scale should grow time: %f <= %f", ts, t1)
	}
}

func TestExecuteErrors(t *testing.T) {
	db := NewDatabase()
	root, err := queries.Plan("SELECT uid FROM clicks")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Execute(root, db); err == nil || !strings.Contains(err.Error(), "not loaded") {
		t.Errorf("err = %v, want not-loaded", err)
	}
}

func TestSortedLines(t *testing.T) {
	lines := SortedLines([]exec.Row{
		{exec.Int(2)}, {exec.Int(10)}, {exec.Int(1)},
	})
	// Lexicographic: "1" < "10" < "2".
	if strings.Join(lines, ",") != "1,10,2" {
		t.Errorf("lines = %v", lines)
	}
}

var _ = plan.Format // keep the plan import for debugging helpers
