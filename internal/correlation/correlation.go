// Package correlation implements YSmart's intra-query correlation analysis
// (paper §IV): it extracts the operation nodes (joins, aggregations, sorts)
// from a logical plan, selects partition-key candidates for aggregations,
// and detects the three correlations — input correlation (IC), transit
// correlation (TC) and job-flow correlation (JFC) — that drive job merging
// in internal/translator.
package correlation

import (
	"fmt"
	"sort"
	"strings"

	"ysmart/internal/plan"
)

// OpKind classifies an operation node.
type OpKind int

// Operation kinds. Selection and projection are not operations: they fold
// into the jobs of the operations around them (paper §V.A).
const (
	KindJoin OpKind = iota + 1
	KindAgg
	KindSort
)

func (k OpKind) String() string {
	switch k {
	case KindJoin:
		return "JOIN"
	case KindAgg:
		return "AGG"
	case KindSort:
		return "SORT"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Operation is one operation node of the plan: the unit that becomes a
// primitive MapReduce job under one-operation-to-one-job translation.
type Operation struct {
	// ID is the operation's 1-based post-order number after Rule 4 child
	// exchange — the job number a one-to-one translation would give it.
	ID   int
	Kind OpKind
	Join *plan.Join
	Agg  *plan.Aggregate
	Sort *plan.Sort
	// Inputs are the operation's data inputs in plan order (left to right).
	Inputs []*Input
	// Parent is the operation that consumes this one (nil for the root).
	Parent *Operation

	label string
}

// Node returns the underlying plan node.
func (o *Operation) Node() plan.Node {
	switch o.Kind {
	case KindJoin:
		return o.Join
	case KindAgg:
		return o.Agg
	default:
		return o.Sort
	}
}

// Name renders a stable label like "JOIN2" or "AGG1" (numbered per kind in
// plan order, matching the paper's figures).
func (o *Operation) Name() string { return o.label }

// Input is one input of an operation: either another operation or a base
// table scan, plus the transparent chain (Filter/Project/Rebind/Limit
// nodes) between them, ordered top-down (nearest the operation first).
type Input struct {
	Op    *Operation
	Scan  *plan.Scan
	Chain []plan.Node
}

// IsTable reports whether the input is a base-table scan.
func (in *Input) IsTable() bool { return in.Scan != nil }

// Analysis is the result of analyzing a plan.
type Analysis struct {
	// Ops lists every operation in post-order (children before parents,
	// with Rule 4 exchange applied), i.e. one-to-one job submission order.
	Ops []*Operation
	// RootOp is the topmost operation; nil when the plan has none (a pure
	// selection-projection query).
	RootOp *Operation
	// TopChain holds the transparent nodes above the root operation (or the
	// whole plan when RootOp is nil), ordered top-down.
	TopChain []plan.Node
	// RootInput is the full root descent: its Op/Scan is what TopChain
	// leads to (for a pure SP query, the base-table scan).
	RootInput *Input
	// Required maps every plan node to the output columns its ancestors
	// consume (see plan.RequiredColumns).
	Required map[plan.Node][]int

	root plan.Node
	pks  map[*Operation]plan.PartKey
}

// Root returns the analyzed plan's root node — the full logical plan,
// including the transparent nodes above RootOp. Consumers that need a
// canonical rendering of the whole query (e.g. sub-plan fingerprinting in
// internal/reuse) read it here.
func (a *Analysis) Root() plan.Node { return a.root }

// Analyze extracts operations, chooses aggregation partition keys with the
// max-connection heuristic (paper §IV.A), and numbers operations.
func Analyze(root plan.Node) (*Analysis, error) {
	a := &Analysis{root: root, pks: make(map[*Operation]plan.PartKey)}
	req, err := plan.RequiredColumns(root)
	if err != nil {
		return nil, err
	}
	a.Required = req

	input := a.extract(root, nil)
	a.RootInput = input
	a.TopChain = input.Chain
	a.RootOp = input.Op
	if a.RootOp == nil {
		return a, nil // pure SP query
	}

	a.collectOps()
	a.choosePartitionKeys()
	a.assignLabels()
	a.numberPostOrder()
	return a, nil
}

// extract walks down through transparent nodes to the next operation or
// scan, building the chain top-down.
func (a *Analysis) extract(n plan.Node, chain []plan.Node) *Input {
	switch x := n.(type) {
	case *plan.Scan:
		return &Input{Scan: x, Chain: chain}
	case *plan.Filter:
		return a.extract(x.Child, append(chain, x))
	case *plan.Project:
		return a.extract(x.Child, append(chain, x))
	case *plan.Rebind:
		return a.extract(x.Child, append(chain, x))
	case *plan.Limit:
		return a.extract(x.Child, append(chain, x))
	case *plan.Join:
		op := &Operation{Kind: KindJoin, Join: x}
		op.Inputs = []*Input{
			a.extract(x.Left, nil),
			a.extract(x.Right, nil),
		}
		a.adopt(op)
		return &Input{Op: op, Chain: chain}
	case *plan.Aggregate:
		op := &Operation{Kind: KindAgg, Agg: x}
		op.Inputs = []*Input{a.extract(x.Child, nil)}
		a.adopt(op)
		return &Input{Op: op, Chain: chain}
	case *plan.Sort:
		op := &Operation{Kind: KindSort, Sort: x}
		op.Inputs = []*Input{a.extract(x.Child, nil)}
		a.adopt(op)
		return &Input{Op: op, Chain: chain}
	default:
		// Unreachable with the current node set; treat as opaque leaf.
		return &Input{Chain: chain}
	}
}

func (a *Analysis) adopt(op *Operation) {
	for _, in := range op.Inputs {
		if in.Op != nil {
			in.Op.Parent = op
		}
	}
}

// collectOps fills Ops in natural post-order (before Rule 4 exchange).
func (a *Analysis) collectOps() {
	var walk func(op *Operation)
	walk = func(op *Operation) {
		for _, in := range op.Inputs {
			if in.Op != nil {
				walk(in.Op)
			}
		}
		a.Ops = append(a.Ops, op)
	}
	walk(a.RootOp)
}

// choosePartitionKeys fixes join partition keys and runs the heuristic for
// aggregations: among an aggregation's candidates (non-empty subsets of its
// grouping columns), pick the one whose partition key matches the largest
// number of other operations. Two passes let aggregation choices reinforce
// each other; ties keep the earliest (smallest) candidate.
func (a *Analysis) choosePartitionKeys() {
	for _, op := range a.Ops {
		if op.Kind == KindJoin {
			a.pks[op] = op.Join.PartKey()
		}
	}
	for pass := 0; pass < 2; pass++ {
		for _, op := range a.Ops {
			if op.Kind != KindAgg {
				continue
			}
			cands := op.Agg.CandidatePKs()
			if len(cands) == 0 {
				delete(a.pks, op) // global aggregation: no partition key
				continue
			}
			best := cands[0]
			bestScore := a.scoreCandidate(op, op.Agg.PartKeyFor(cands[0]))
			for _, cand := range cands[1:] {
				score := a.scoreCandidate(op, op.Agg.PartKeyFor(cand))
				if score > bestScore {
					best, bestScore = cand, score
				}
			}
			op.Agg.PKChoice = best
			a.pks[op] = op.Agg.PartKeyFor(best)
		}
	}
}

// scoreCandidate counts how many operations a candidate key would connect.
// Only operations that can actually form a correlation with op count:
// operations sharing an input table (IC, the precondition of TC) and op's
// parent and input operations (the endpoints of JFC).
func (a *Analysis) scoreCandidate(op *Operation, pk plan.PartKey) int {
	score := 0
	for _, other := range a.Ops {
		if other == op || !a.canCorrelate(op, other) {
			continue
		}
		opk, ok := a.pks[other]
		if !ok {
			continue
		}
		if pk.Equal(opk) {
			score++
		}
	}
	return score
}

// canCorrelate reports whether x and y could have any of the three
// correlations, independent of partition keys.
func (a *Analysis) canCorrelate(x, y *Operation) bool {
	if a.InputCorrelated(x, y) {
		return true
	}
	if x.Parent == y || y.Parent == x {
		return true
	}
	return false
}

// assignLabels numbers operations per kind in post-order, matching the
// paper's JOIN1/AGG1 naming.
func (a *Analysis) assignLabels() {
	counts := map[OpKind]int{}
	for _, op := range a.Ops {
		counts[op.Kind]++
		op.label = fmt.Sprintf("%v%d", op.Kind, counts[op.Kind])
	}
}

// numberPostOrder assigns job IDs in post-order with Rule 4 child exchange:
// for a join with job-flow correlation to exactly one input operation, the
// other input's subtree is visited first so its job completes earlier
// (paper §V.B Rule 4).
func (a *Analysis) numberPostOrder() {
	id := 0
	var walk func(op *Operation)
	walk = func(op *Operation) {
		inputs := append([]*Input(nil), op.Inputs...)
		if op.Kind == KindJoin && len(inputs) == 2 && inputs[0].Op != nil && inputs[1].Op != nil {
			jfc0 := a.JobFlowCorrelated(op, inputs[0].Op)
			jfc1 := a.JobFlowCorrelated(op, inputs[1].Op)
			if jfc0 && !jfc1 {
				inputs[0], inputs[1] = inputs[1], inputs[0]
			}
		}
		for _, in := range inputs {
			if in.Op != nil {
				walk(in.Op)
			}
		}
		id++
		op.ID = id
	}
	walk(a.RootOp)
	sort.Slice(a.Ops, func(i, j int) bool { return a.Ops[i].ID < a.Ops[j].ID })
}

// PK returns the operation's partition key, or nil when it has none
// (global aggregations, sorts).
func (a *Analysis) PK(op *Operation) plan.PartKey { return a.pks[op] }

// OverridePK replaces an aggregation's partition-key choice with another
// candidate (indices into its grouping columns). It exists for ablation
// studies of the selection heuristic; translation respects the override.
func (a *Analysis) OverridePK(op *Operation, candidate []int) error {
	if op.Kind != KindAgg {
		return fmt.Errorf("only aggregation partition keys can be overridden")
	}
	if len(candidate) == 0 || len(candidate) > len(op.Agg.GroupBy) {
		return fmt.Errorf("candidate %v out of range for %d grouping columns", candidate, len(op.Agg.GroupBy))
	}
	for _, gi := range candidate {
		if gi < 0 || gi >= len(op.Agg.GroupBy) {
			return fmt.Errorf("candidate index %d out of range", gi)
		}
	}
	op.Agg.PKChoice = append([]int(nil), candidate...)
	a.pks[op] = op.Agg.PartKeyFor(candidate)
	return nil
}

// InputTables returns the physical tables the operation's job scans
// directly (inputs that are base tables, not other operations).
func (a *Analysis) InputTables(op *Operation) map[string]bool {
	out := make(map[string]bool)
	for _, in := range op.Inputs {
		if in.Scan != nil {
			out[in.Scan.Table] = true
		}
	}
	return out
}

// InputCorrelated reports input correlation: the two operations' input
// relation sets are not disjoint (paper §IV.A definition 1).
func (a *Analysis) InputCorrelated(x, y *Operation) bool {
	tx, ty := a.InputTables(x), a.InputTables(y)
	for t := range tx {
		if ty[t] {
			return true
		}
	}
	return false
}

// TransitCorrelated reports transit correlation: input correlation plus the
// same partition key (definition 2).
func (a *Analysis) TransitCorrelated(x, y *Operation) bool {
	if !a.InputCorrelated(x, y) {
		return false
	}
	px, py := a.pks[x], a.pks[y]
	if px == nil || py == nil {
		return false
	}
	return px.Equal(py)
}

// JobFlowCorrelated reports job-flow correlation: child is an input
// operation of parent and they share the partition key (definition 3).
func (a *Analysis) JobFlowCorrelated(parent, child *Operation) bool {
	isChild := false
	for _, in := range parent.Inputs {
		if in.Op == child {
			isChild = true
		}
	}
	if !isChild {
		return false
	}
	pp, pc := a.pks[parent], a.pks[child]
	if pp == nil || pc == nil {
		return false
	}
	return pp.Equal(pc)
}

// Report renders a human-readable correlation summary for explain output.
func (a *Analysis) Report() string {
	var sb strings.Builder
	if a.RootOp == nil {
		sb.WriteString("no operations (selection/projection only)\n")
		return sb.String()
	}
	for _, op := range a.Ops {
		pk := "none"
		if k, ok := a.pks[op]; ok {
			pk = k.String()
		}
		fmt.Fprintf(&sb, "%-6s job#%d  pk=%s  %s\n", op.Name(), op.ID, pk, op.Node().Describe())
	}
	for i, x := range a.Ops {
		for _, y := range a.Ops[i+1:] {
			switch {
			case a.TransitCorrelated(x, y):
				fmt.Fprintf(&sb, "TC  %s ~ %s\n", x.Name(), y.Name())
			case a.InputCorrelated(x, y):
				fmt.Fprintf(&sb, "IC  %s ~ %s\n", x.Name(), y.Name())
			}
		}
	}
	for _, op := range a.Ops {
		for _, in := range op.Inputs {
			if in.Op != nil && a.JobFlowCorrelated(op, in.Op) {
				fmt.Fprintf(&sb, "JFC %s <- %s\n", op.Name(), in.Op.Name())
			}
		}
	}
	return sb.String()
}
