package correlation

import (
	"strings"
	"testing"

	"ysmart/internal/plan"
	"ysmart/internal/queries"
)

func analyze(t *testing.T, sql string) *Analysis {
	t.Helper()
	root, err := queries.Plan(sql)
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	a, err := Analyze(root)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return a
}

func opByName(t *testing.T, a *Analysis, name string) *Operation {
	t.Helper()
	for _, op := range a.Ops {
		if op.Name() == name {
			return op
		}
	}
	t.Fatalf("operation %s not found in %v", name, names(a))
	return nil
}

func names(a *Analysis) []string {
	out := make([]string, len(a.Ops))
	for i, op := range a.Ops {
		out[i] = op.Name()
	}
	return out
}

func TestPureSPQueryHasNoOps(t *testing.T) {
	a := analyze(t, "SELECT uid, ts FROM clicks WHERE cid = 5")
	if a.RootOp != nil || len(a.Ops) != 0 {
		t.Fatalf("ops = %v, want none", names(a))
	}
	if len(a.TopChain) == 0 {
		t.Error("top chain should hold the projection/filter")
	}
}

// Q17 (paper §IV.B): AGG1 and JOIN1 have input correlation and transit
// correlation; JOIN2 has job-flow correlation with both children.
func TestQ17Correlations(t *testing.T) {
	a := analyze(t, queries.Q17)
	if got := strings.Join(names(a), ","); got != "AGG1,JOIN1,JOIN2,AGG2" {
		t.Fatalf("ops = %s, want AGG1,JOIN1,JOIN2,AGG2", got)
	}
	agg1 := opByName(t, a, "AGG1")
	join1 := opByName(t, a, "JOIN1")
	join2 := opByName(t, a, "JOIN2")
	agg2 := opByName(t, a, "AGG2")

	if !a.InputCorrelated(agg1, join1) {
		t.Error("AGG1 and JOIN1 must have input correlation (both scan lineitem)")
	}
	if !a.TransitCorrelated(agg1, join1) {
		t.Error("AGG1 and JOIN1 must have transit correlation (same PK l_partkey)")
	}
	if !a.JobFlowCorrelated(join2, agg1) {
		t.Error("JOIN2 must have JFC with AGG1")
	}
	if !a.JobFlowCorrelated(join2, join1) {
		t.Error("JOIN2 must have JFC with JOIN1")
	}
	// The final global aggregation has no partition key and no JFC.
	if a.PK(agg2) != nil {
		t.Errorf("global AGG2 pk = %v, want none", a.PK(agg2))
	}
	if a.JobFlowCorrelated(agg2, join2) {
		t.Error("global AGG2 must not have JFC")
	}
}

// Q-CSA (paper §VII.A.2): AGG1 and AGG2 have multiple candidate PKs; the
// heuristic must pick uid so all five operations correlate.
func TestQCSAPartitionKeyChoice(t *testing.T) {
	a := analyze(t, queries.QCSA)
	if got := strings.Join(names(a), ","); got != "JOIN1,AGG1,AGG2,JOIN2,AGG3,AGG4" {
		t.Fatalf("ops = %s", got)
	}
	uid := plan.PartKey{plan.NewKeyComponent(plan.MakeColumnID("clicks", "uid"))}
	for _, name := range []string{"JOIN1", "AGG1", "AGG2", "JOIN2", "AGG3"} {
		op := opByName(t, a, name)
		if pk := a.PK(op); pk == nil || !pk.Equal(uid) {
			t.Errorf("%s pk = %v, want uid", name, a.PK(op))
		}
	}
	// The JFC chain JOIN1 <- AGG1 <- AGG2 <- JOIN2 <- AGG3 must hold.
	chain := []struct{ parent, child string }{
		{"AGG1", "JOIN1"},
		{"AGG2", "AGG1"},
		{"JOIN2", "AGG2"},
		{"AGG3", "JOIN2"},
	}
	for _, c := range chain {
		if !a.JobFlowCorrelated(opByName(t, a, c.parent), opByName(t, a, c.child)) {
			t.Errorf("JFC %s <- %s missing", c.parent, c.child)
		}
	}
	// JOIN1 and JOIN2 share the clicks scan with the same key.
	if !a.TransitCorrelated(opByName(t, a, "JOIN1"), opByName(t, a, "JOIN2")) {
		t.Error("JOIN1 and JOIN2 must have transit correlation")
	}
}

// Q21 subtree (paper §VII.C): JOIN1, AGG1 and AGG2 all scan lineitem with
// PK l_orderkey; JOIN2 and the left outer join have JFC with both children.
func TestQ21Correlations(t *testing.T) {
	a := analyze(t, queries.Q21)
	if got := strings.Join(names(a), ","); got != "JOIN1,AGG1,JOIN2,AGG2,JOIN3" {
		t.Fatalf("ops = %s", got)
	}
	join1 := opByName(t, a, "JOIN1")
	agg1 := opByName(t, a, "AGG1")
	join2 := opByName(t, a, "JOIN2")
	agg2 := opByName(t, a, "AGG2")
	loj := opByName(t, a, "JOIN3")

	for _, pair := range [][2]*Operation{{join1, agg1}, {join1, agg2}, {agg1, agg2}} {
		if !a.TransitCorrelated(pair[0], pair[1]) {
			t.Errorf("TC missing between %s and %s", pair[0].Name(), pair[1].Name())
		}
	}
	if !a.JobFlowCorrelated(join2, join1) || !a.JobFlowCorrelated(join2, agg1) {
		t.Error("JOIN2 must have JFC with both children")
	}
	if !a.JobFlowCorrelated(loj, join2) || !a.JobFlowCorrelated(loj, agg2) {
		t.Error("Left Outer Join 1 must have JFC with both children")
	}
}

// Q18: AGG2 groups by six columns; the heuristic must choose c_custkey —
// the only candidate that correlates with its child JOIN3 — over
// o_orderkey, which matches more operations but can form no correlation
// with any of them.
func TestQ18PartitionKeyHeuristicUsesCorrelatablePartners(t *testing.T) {
	a := analyze(t, queries.Q18)
	if got := strings.Join(names(a), ","); got != "JOIN1,AGG1,JOIN2,JOIN3,AGG2,SORT1" {
		t.Fatalf("ops = %s", got)
	}
	agg2 := opByName(t, a, "AGG2")
	join3 := opByName(t, a, "JOIN3")
	custkey := plan.PartKey{plan.NewKeyComponent(
		plan.MakeColumnID("customer", "c_custkey"),
		plan.MakeColumnID("orders", "o_custkey"),
	)}
	if pk := a.PK(agg2); pk == nil || !pk.Equal(custkey) {
		t.Errorf("AGG2 pk = %v, want c_custkey", a.PK(agg2))
	}
	if !a.JobFlowCorrelated(agg2, join3) {
		t.Error("AGG2 must have JFC with JOIN3")
	}
	// The first three operations share PK l_orderkey.
	okey := plan.PartKey{plan.NewKeyComponent(plan.MakeColumnID("lineitem", "l_orderkey"))}
	for _, name := range []string{"JOIN1", "AGG1", "JOIN2"} {
		if pk := a.PK(opByName(t, a, name)); pk == nil || !pk.Equal(okey) {
			t.Errorf("%s pk = %v, want l_orderkey", name, pk)
		}
	}
	// Sorts never have a partition key.
	if a.PK(opByName(t, a, "SORT1")) != nil {
		t.Error("SORT1 must have no pk")
	}
}

func TestPostOrderNumbering(t *testing.T) {
	a := analyze(t, queries.QCSA)
	for i, op := range a.Ops {
		if op.ID != i+1 {
			t.Errorf("op %s id = %d, want %d", op.Name(), op.ID, i+1)
		}
		for _, in := range op.Inputs {
			if in.Op != nil && in.Op.ID >= op.ID {
				t.Errorf("child %s (id %d) numbered after parent %s (id %d)",
					in.Op.Name(), in.Op.ID, op.Name(), op.ID)
			}
		}
	}
}

// Rule 4 child exchange: when a join has JFC with exactly one input
// operation, the other input's subtree is numbered first (Fig. 7(b)).
func TestRule4ChildExchange(t *testing.T) {
	// The outer join partitions by uid: JFC holds with the aggregation
	// (grouped by uid) but not with the inner join, whose own partition key
	// is fixed at cid = p_partkey. The aggregation is listed first in FROM,
	// so without the exchange it would get the lower job number.
	sql := `
	SELECT a.uid FROM
	  (SELECT uid, count(*) AS n FROM clicks GROUP BY uid) AS a,
	  (SELECT x.uid AS xuid, p_name FROM clicks x, part WHERE x.cid = p_partkey) AS b
	WHERE a.uid = b.xuid`
	a := analyze(t, sql)
	join := a.RootOp
	if join.Kind != KindJoin {
		t.Fatalf("root op is %v", join.Kind)
	}
	aggA := join.Inputs[0].Op
	joinB := join.Inputs[1].Op
	jfcA := a.JobFlowCorrelated(join, aggA)
	jfcB := a.JobFlowCorrelated(join, joinB)
	if !jfcA || jfcB {
		t.Fatalf("jfc = (%v, %v), want (true, false)", jfcA, jfcB)
	}
	if joinB.ID >= aggA.ID {
		t.Errorf("rule 4 exchange: non-JFC child should be numbered first (joinB=%d, aggA=%d)",
			joinB.ID, aggA.ID)
	}
}

func TestInputTables(t *testing.T) {
	a := analyze(t, queries.Q21)
	join1 := opByName(t, a, "JOIN1")
	tables := a.InputTables(join1)
	if !tables["lineitem"] || !tables["orders"] || len(tables) != 2 {
		t.Errorf("JOIN1 input tables = %v", tables)
	}
	// JOIN2 reads only operation outputs.
	if got := a.InputTables(opByName(t, a, "JOIN2")); len(got) != 0 {
		t.Errorf("JOIN2 input tables = %v, want none", got)
	}
}

func TestReportMentionsCorrelations(t *testing.T) {
	a := analyze(t, queries.Q17)
	r := a.Report()
	for _, want := range []string{"AGG1", "JOIN1", "JOIN2", "TC", "JFC"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
	sp := analyze(t, "SELECT uid FROM clicks")
	if !strings.Contains(sp.Report(), "no operations") {
		t.Error("SP report should say no operations")
	}
}

func TestInputIsTableAndOverridePK(t *testing.T) {
	a := analyze(t, queries.Q17)
	join1 := opByName(t, a, "JOIN1")
	for _, in := range join1.Inputs {
		if !in.IsTable() {
			t.Error("JOIN1 inputs should be base tables")
		}
	}
	join2 := opByName(t, a, "JOIN2")
	for _, in := range join2.Inputs {
		if in.IsTable() {
			t.Error("JOIN2 inputs should be operations")
		}
	}
	// OverridePK flips an aggregation's key and is visible through PK().
	agg1 := opByName(t, a, "AGG1")
	if err := a.OverridePK(agg1, []int{0}); err != nil {
		t.Fatalf("OverridePK: %v", err)
	}
	if a.PK(agg1) == nil {
		t.Error("override lost the key")
	}
	if err := a.OverridePK(join2, []int{0}); err == nil {
		t.Error("join PK override should fail")
	}
}
