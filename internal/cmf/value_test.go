package cmf

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"ysmart/internal/exec"
)

func TestEncodeDecodeTagged(t *testing.T) {
	tests := []struct {
		name     string
		input    int
		excluded []int
		row      exec.Row
		wantRaw  string
	}{
		{"no exclusions", 0, nil, exec.Row{exec.Int(1), exec.Str("x")}, "0|1\tx"},
		{"one exclusion", 1, []int{3}, exec.Row{exec.Int(7)}, "1!3|7"},
		{"many exclusions", 2, []int{1, 4, 9}, exec.Row{exec.Null()}, `2!1,4,9|\N`},
		{"empty row", 0, nil, exec.Row{}, "0|"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			enc := EncodeTagged(tt.input, tt.excluded, tt.row)
			if enc != tt.wantRaw {
				t.Errorf("encoded %q, want %q", enc, tt.wantRaw)
			}
			tv, err := DecodeTagged(enc)
			if err != nil {
				t.Fatal(err)
			}
			if tv.Input != tt.input {
				t.Errorf("input = %d, want %d", tv.Input, tt.input)
			}
			if !reflect.DeepEqual(tv.Excluded, tt.excluded) {
				t.Errorf("excluded = %v, want %v", tv.Excluded, tt.excluded)
			}
			if len(tv.Row) != len(tt.row) {
				t.Errorf("row = %v, want %v", tv.Row, tt.row)
			}
		})
	}
}

func TestDecodeTaggedErrors(t *testing.T) {
	for _, s := range []string{"", "noseparator", "x|row", "0!a|row"} {
		if _, err := DecodeTagged(s); err == nil {
			t.Errorf("DecodeTagged(%q) succeeded, want error", s)
		}
	}
}

func TestSees(t *testing.T) {
	tv := TaggedValue{Excluded: []int{2, 5}}
	if tv.Sees(2) || tv.Sees(5) {
		t.Error("excluded streams must not see the value")
	}
	if !tv.Sees(1) || !tv.Sees(3) {
		t.Error("other streams must see the value")
	}
}

// Property: round trip preserves input index and exclusion list for random
// shapes.
func TestTaggedRoundTripProperty(t *testing.T) {
	f := func(input uint8, exclRaw []uint8, a, b int32) bool {
		var excluded []int
		seen := map[int]bool{}
		for _, e := range exclRaw {
			if !seen[int(e)] {
				seen[int(e)] = true
				excluded = append(excluded, int(e))
			}
		}
		row := exec.Row{exec.Int(int64(a)), exec.Int(int64(b))}
		tv, err := DecodeTagged(EncodeTagged(int(input), excluded, row))
		if err != nil {
			return false
		}
		if tv.Input != int(input) || !reflect.DeepEqual(tv.Excluded, excluded) {
			return false
		}
		return tv.Row[0].I == int64(a) && tv.Row[1].I == int64(b)
	}
	cfg := &quick.Config{MaxCount: 1000, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestTagLineSplitTag(t *testing.T) {
	line := TagLine("JOIN1", "1\t2")
	tag, payload := SplitTag(line)
	if tag != "JOIN1" || payload != "1\t2" {
		t.Errorf("SplitTag = (%q, %q)", tag, payload)
	}
	if TagLine("", "x") != "x" {
		t.Error("empty tag should leave the line unchanged")
	}
	tag, payload = SplitTag("plain")
	if tag != "" || payload != "plain" {
		t.Errorf("untagged SplitTag = (%q, %q)", tag, payload)
	}
}
