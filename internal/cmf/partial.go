package cmf

import (
	"fmt"

	"ysmart/internal/exec"
)

// Map-side partial aggregation (Hadoop combiners / Hive's hash-aggregate
// map phase). An aggregate is decomposable when a bounded partial state can
// be merged associatively: COUNT and SUM keep a running total, MIN/MAX keep
// the extremum, AVG keeps (sum, count). COUNT(DISTINCT) is not decomposable
// into bounded state, so jobs containing it run without a combiner.

// Decomposable reports whether every aggregate kind supports partial
// aggregation.
func Decomposable(kinds []exec.AggKind) bool {
	for _, k := range kinds {
		if k == exec.AggCountDistinct {
			return false
		}
	}
	return true
}

// partialWidth is the number of row fields a kind's partial state occupies.
func partialWidth(k exec.AggKind) int {
	if k == exec.AggAvg {
		return 2 // sum, count
	}
	return 1
}

// partialState merges partial fields and produces the final value.
type partialState interface {
	merge(fields exec.Row) error
	result() exec.Value
}

func newPartialState(k exec.AggKind) partialState {
	switch k {
	case exec.AggCountStar, exec.AggCount:
		return &countState{}
	case exec.AggSum:
		return &sumState{}
	case exec.AggMin:
		return &extState{min: true}
	case exec.AggMax:
		return &extState{}
	case exec.AggAvg:
		return &avgState{}
	default:
		return nil
	}
}

type countState struct{ n int64 }

func (s *countState) merge(f exec.Row) error {
	if f[0].T != exec.TypeInt {
		return fmt.Errorf("count partial is %v, want int", f[0].T)
	}
	s.n += f[0].I
	return nil
}
func (s *countState) result() exec.Value { return exec.Int(s.n) }

type sumState struct{ acc exec.Accumulator }

func (s *sumState) merge(f exec.Row) error {
	if s.acc == nil {
		s.acc = exec.NewAccumulator(exec.AggSum)
	}
	s.acc.Add(f[0])
	return nil
}
func (s *sumState) result() exec.Value {
	if s.acc == nil {
		return exec.Null()
	}
	return s.acc.Result()
}

type extState struct {
	min bool
	acc exec.Accumulator
}

func (s *extState) merge(f exec.Row) error {
	if s.acc == nil {
		if s.min {
			s.acc = exec.NewAccumulator(exec.AggMin)
		} else {
			s.acc = exec.NewAccumulator(exec.AggMax)
		}
	}
	s.acc.Add(f[0])
	return nil
}
func (s *extState) result() exec.Value {
	if s.acc == nil {
		return exec.Null()
	}
	return s.acc.Result()
}

type avgState struct {
	sum float64
	n   int64
}

func (s *avgState) merge(f exec.Row) error {
	if f[1].T != exec.TypeInt {
		return fmt.Errorf("avg partial count is %v, want int", f[1].T)
	}
	if sum, ok := f[0].AsFloat(); ok {
		s.sum += sum
	} else if !f[0].IsNull() {
		return fmt.Errorf("avg partial sum is %v, want numeric", f[0].T)
	}
	s.n += f[1].I
	return nil
}
func (s *avgState) result() exec.Value {
	if s.n == 0 {
		return exec.Null()
	}
	return exec.Float(s.sum / float64(s.n))
}

// buildPartialRow computes one partial row for a group: group values
// followed by each aggregate's partial fields, fed from the raw rows.
func buildPartialRow(groupVals exec.Row, aggs []AggFunc, rows []exec.Row) (exec.Row, error) {
	out := make(exec.Row, 0, len(groupVals)+len(aggs)+1)
	out = append(out, groupVals...)
	for _, spec := range aggs {
		switch spec.Kind {
		case exec.AggCountStar, exec.AggCount:
			var n int64
			for _, r := range rows {
				if spec.Arg == nil {
					n++
					continue
				}
				v, err := spec.Arg(r)
				if err != nil {
					return nil, err
				}
				if !v.IsNull() {
					n++
				}
			}
			out = append(out, exec.Int(n))
		case exec.AggSum, exec.AggMin, exec.AggMax:
			acc := exec.NewAccumulator(spec.Kind)
			for _, r := range rows {
				v, err := spec.Arg(r)
				if err != nil {
					return nil, err
				}
				acc.Add(v)
			}
			out = append(out, acc.Result())
		case exec.AggAvg:
			var sum float64
			var n int64
			for _, r := range rows {
				v, err := spec.Arg(r)
				if err != nil {
					return nil, err
				}
				if f, ok := v.AsFloat(); ok {
					sum += f
					n++
				}
			}
			out = append(out, exec.Float(sum), exec.Int(n))
		default:
			return nil, fmt.Errorf("aggregate %v is not decomposable", spec.Kind)
		}
	}
	return out, nil
}
