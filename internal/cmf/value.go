// Package cmf implements YSmart's Common MapReduce Framework (paper §VI):
// the machinery that lets one physical MapReduce job execute the
// functionality of several correlated jobs.
//
// A common mapper reads each record once, evaluates the selection of every
// merged job ("stream"), and emits at most one common key/value pair whose
// value carries (a) the union of the columns any merged job needs and (b)
// an *inverted* tag listing the streams that must NOT see the pair —
// inverted because map outputs overlap heavily between merged jobs, so the
// exclusion list is usually empty (§VI.A). Every pair also carries its
// source-input index, the standard reduce-side-join table tag (§II.B).
//
// A common reducer dispatches each value to the merged reducers that may
// see it (Algorithm 1) and then runs post-job computations — the operators
// merged by job-flow correlation — as a small per-key dataflow graph. The
// translator (internal/translator) builds these graphs; this package only
// executes them.
package cmf

import (
	"fmt"
	"strconv"
	"strings"

	"ysmart/internal/exec"
)

// TaggedValue is one common map-output value: the union row, the index of
// the input that produced it, and the set of that input's streams excluded
// from seeing it.
type TaggedValue struct {
	Input    int   // source input index within the job
	Excluded []int // stream IDs that must not see the row; usually empty
	Row      exec.Row
}

// EncodeTagged renders a tagged value as "<input>[!excl,...]|<row>". The
// exclusion list is omitted when empty, so the common case costs two bytes
// of overhead ("0|").
func EncodeTagged(input int, excluded []int, row exec.Row) string {
	var sb strings.Builder
	sb.WriteString(strconv.Itoa(input))
	if len(excluded) > 0 {
		sb.WriteByte('!')
		for i, id := range excluded {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(strconv.Itoa(id))
		}
	}
	sb.WriteByte('|')
	sb.WriteString(exec.EncodeRow(row))
	return sb.String()
}

// DecodeTagged parses a tagged value produced by EncodeTagged.
func DecodeTagged(s string) (TaggedValue, error) {
	sep := strings.IndexByte(s, '|')
	if sep < 0 {
		return TaggedValue{}, fmt.Errorf("tagged value %q has no separator", s)
	}
	head := s[:sep]
	var exclPart string
	if bang := strings.IndexByte(head, '!'); bang >= 0 {
		exclPart = head[bang+1:]
		head = head[:bang]
	}
	input, err := strconv.Atoi(head)
	if err != nil {
		return TaggedValue{}, fmt.Errorf("tagged value %q: bad input index %q", s, head)
	}
	var excluded []int
	if exclPart != "" {
		for _, part := range strings.Split(exclPart, ",") {
			id, err := strconv.Atoi(part)
			if err != nil {
				return TaggedValue{}, fmt.Errorf("tagged value %q: bad stream id %q", s, part)
			}
			excluded = append(excluded, id)
		}
	}
	row, err := exec.DecodeRowUntyped(s[sep+1:])
	if err != nil {
		return TaggedValue{}, fmt.Errorf("tagged value %q: %w", s, err)
	}
	return TaggedValue{Input: input, Excluded: excluded, Row: row}, nil
}

// Sees reports whether stream id may see the value. The caller must already
// have established that the stream belongs to the value's source input.
func (t TaggedValue) Sees(id int) bool {
	for _, x := range t.Excluded {
		if x == id {
			return false
		}
	}
	return true
}

// outputTagSep separates an output-source tag from the row payload in the
// output of a common job that writes results of several merged jobs
// ("an additional tag is used for each output key/value pair to distinguish
// its source", §VI.B).
const outputTagSep = "\x01"

// TagLine prefixes a row line with a source tag; with an empty tag the line
// is returned unchanged.
func TagLine(tag, line string) string {
	if tag == "" {
		return line
	}
	return tag + outputTagSep + line
}

// SplitTag removes the source tag of a line written by TagLine, returning
// the tag ("" if none) and the payload.
func SplitTag(line string) (tag, payload string) {
	if i := strings.Index(line, outputTagSep); i >= 0 {
		return line[:i], line[i+len(outputTagSep):]
	}
	return "", line
}
