package cmf

import (
	"testing"

	"ysmart/internal/exec"
)

func TestDecomposable(t *testing.T) {
	if !Decomposable([]exec.AggKind{exec.AggCount, exec.AggSum, exec.AggAvg, exec.AggMin, exec.AggMax, exec.AggCountStar}) {
		t.Error("standard aggregates are decomposable")
	}
	if Decomposable([]exec.AggKind{exec.AggSum, exec.AggCountDistinct}) {
		t.Error("COUNT DISTINCT is not decomposable")
	}
}

func TestPartialStatesMergeAndFinalize(t *testing.T) {
	tests := []struct {
		name     string
		kind     exec.AggKind
		partials []exec.Row // one row of partial fields per merge
		want     exec.Value
	}{
		{"count", exec.AggCount, []exec.Row{{exec.Int(2)}, {exec.Int(3)}}, exec.Int(5)},
		{"sum ints", exec.AggSum, []exec.Row{{exec.Int(4)}, {exec.Int(6)}}, exec.Int(10)},
		{"sum with null partial", exec.AggSum, []exec.Row{{exec.Null()}, {exec.Int(6)}}, exec.Int(6)},
		{"sum all null", exec.AggSum, []exec.Row{{exec.Null()}}, exec.Null()},
		{"min", exec.AggMin, []exec.Row{{exec.Int(9)}, {exec.Int(2)}}, exec.Int(2)},
		{"min all null", exec.AggMin, []exec.Row{{exec.Null()}}, exec.Null()},
		{"max", exec.AggMax, []exec.Row{{exec.Int(9)}, {exec.Int(2)}}, exec.Int(9)},
		{"avg", exec.AggAvg, []exec.Row{{exec.Float(10), exec.Int(2)}, {exec.Float(2), exec.Int(1)}}, exec.Float(4)},
		{"avg zero count", exec.AggAvg, []exec.Row{{exec.Float(0), exec.Int(0)}}, exec.Null()},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			st := newPartialState(tt.kind)
			for _, p := range tt.partials {
				if err := st.merge(p); err != nil {
					t.Fatal(err)
				}
			}
			if got := st.result(); got != tt.want {
				t.Errorf("result = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestPartialStateMergeErrors(t *testing.T) {
	count := newPartialState(exec.AggCount)
	if err := count.merge(exec.Row{exec.Str("x")}); err == nil {
		t.Error("count partial should reject non-int")
	}
	avg := newPartialState(exec.AggAvg)
	if err := avg.merge(exec.Row{exec.Float(1), exec.Str("x")}); err == nil {
		t.Error("avg partial should reject non-int count")
	}
	if err := avg.merge(exec.Row{exec.Str("x"), exec.Int(1)}); err == nil {
		t.Error("avg partial should reject non-numeric sum")
	}
}

func TestEmptyPartialStatesAreNull(t *testing.T) {
	for _, kind := range []exec.AggKind{exec.AggSum, exec.AggMin, exec.AggMax, exec.AggAvg} {
		if got := newPartialState(kind).result(); !got.IsNull() {
			t.Errorf("%v empty state result = %v, want NULL", kind, got)
		}
	}
	if got := newPartialState(exec.AggCount).result(); got != exec.Int(0) {
		t.Errorf("empty count = %v, want 0", got)
	}
}

func TestSourceString(t *testing.T) {
	if got := StreamSource(3).String(); got != "stream:3" {
		t.Errorf("StreamSource String = %q", got)
	}
	if got := OpSource("JOIN1").String(); got != "op:JOIN1" {
		t.Errorf("OpSource String = %q", got)
	}
}

func TestBuildPartialRowCountWithArg(t *testing.T) {
	// COUNT(col) skips NULL arguments in the partial.
	rows := []exec.Row{{exec.Int(1)}, {exec.Null()}, {exec.Int(3)}}
	partial, err := buildPartialRow(exec.Row{exec.Str("g")}, []AggFunc{
		{Kind: exec.AggCount, Arg: col(0)},
		{Kind: exec.AggCountStar},
	}, rows)
	if err != nil {
		t.Fatal(err)
	}
	// group value, count(col)=2, count(*)=3.
	if partial[0].S != "g" || partial[1].I != 2 || partial[2].I != 3 {
		t.Errorf("partial = %v", partial)
	}
}
