package cmf

import (
	"fmt"
	"sort"
	"sync"

	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
)

// Stream is one merged job's view of a common input: its map-side selection
// over the shared table scan.
type Stream struct {
	ID int
	// Filter is the stream's selection; nil accepts every row.
	Filter RowPred
}

// CommonInput describes one map-side input of a common job.
type CommonInput struct {
	Path string
	// Decode parses one input line into a row (typically a schema-typed
	// decode for base tables, or a tag-stripping decode for intermediate
	// files written by earlier common jobs).
	Decode func(line string) (exec.Row, error)
	// Key computes the partition-key values of a row. All streams of an
	// input share the key — that is precisely the transit-correlation
	// condition that allowed the merge.
	Key func(exec.Row) ([]exec.Value, error)
	// KeyEncode overrides the default injective key encoding. Distributed
	// sort jobs use exec.EncodeOrderedKey so key byte-order equals value
	// order; such keys are opaque (see CommonJob.OpaqueKeys).
	KeyEncode func([]exec.Value) string
	// Project reduces the decoded row to the union of the columns any
	// stream needs; nil keeps the whole row.
	Project func(exec.Row) exec.Row
	Streams []Stream
}

// OutputSpec names an operator whose per-key results the job writes.
type OutputSpec struct {
	Op string
	// Tag distinguishes this operator's rows in the shared output file when
	// the job writes results of several merged jobs (§VI.B). Single-output
	// jobs leave it empty.
	Tag string
}

// CommonJob is the translator-facing description of one merged MapReduce
// job: shared inputs, the per-key operator graph, and which operators'
// results are written.
type CommonJob struct {
	Name    string
	Inputs  []CommonInput
	Ops     []Op
	Outputs []OutputSpec
	// Output is the DFS path the job writes.
	Output         string
	NumReduceTasks int
	// CombineOp optionally names a FromPartials AggOp to drive map-side
	// partial aggregation (Hive's hash-aggregate map phase). It requires a
	// single input with a single unfiltered-or-filtered stream and
	// decomposable aggregates.
	CombineOp string
	// OpaqueKeys marks the reduce keys as non-decodable (order-preserving
	// binary encodings); the reducer then passes a nil key row to the
	// operator graph, which none of the operators consult.
	OpaqueKeys bool
}

// Build lowers the common job onto the MapReduce engine.
func (cj *CommonJob) Build() (*mapreduce.Job, error) {
	if err := cj.validate(); err != nil {
		return nil, err
	}

	streamInput := make(map[int]int) // stream ID -> input index
	for ii, in := range cj.Inputs {
		for _, st := range in.Streams {
			streamInput[st.ID] = ii
		}
	}

	job := &mapreduce.Job{
		Name:           cj.Name,
		Output:         cj.Output,
		NumReduceTasks: cj.NumReduceTasks,
	}
	for ii := range cj.Inputs {
		in := cj.Inputs[ii]
		idx := ii
		job.Inputs = append(job.Inputs, mapreduce.Input{
			Path:   in.Path,
			Mapper: commonMapper(idx, in),
		})
	}
	job.Reducer = &commonReducer{cj: cj}

	if cj.CombineOp != "" {
		comb, err := cj.buildCombiner()
		if err != nil {
			return nil, err
		}
		job.Combiner = comb
	}
	return job, nil
}

func (cj *CommonJob) validate() error {
	if cj.Name == "" {
		return fmt.Errorf("common job has no name")
	}
	if len(cj.Inputs) == 0 {
		return fmt.Errorf("common job %s has no inputs", cj.Name)
	}
	seenStream := make(map[int]bool)
	for ii, in := range cj.Inputs {
		if in.Decode == nil || in.Key == nil {
			return fmt.Errorf("common job %s input %d needs Decode and Key", cj.Name, ii)
		}
		if len(in.Streams) == 0 {
			return fmt.Errorf("common job %s input %d has no streams", cj.Name, ii)
		}
		for _, st := range in.Streams {
			if seenStream[st.ID] {
				return fmt.Errorf("common job %s: duplicate stream id %d", cj.Name, st.ID)
			}
			seenStream[st.ID] = true
		}
	}
	opNames := make(map[string]bool, len(cj.Ops))
	for _, op := range cj.Ops {
		if op.Name() == "" {
			return fmt.Errorf("common job %s has an unnamed op", cj.Name)
		}
		if opNames[op.Name()] {
			return fmt.Errorf("common job %s: duplicate op %q", cj.Name, op.Name())
		}
		opNames[op.Name()] = true
	}
	for _, op := range cj.Ops {
		for _, src := range op.Sources() {
			if src.IsOp() {
				if !opNames[src.Op] {
					return fmt.Errorf("common job %s: op %q reads unknown op %q", cj.Name, op.Name(), src.Op)
				}
			} else if !seenStream[src.Stream] {
				return fmt.Errorf("common job %s: op %q reads unknown stream %d", cj.Name, op.Name(), src.Stream)
			}
		}
	}
	if len(cj.Outputs) == 0 {
		return fmt.Errorf("common job %s writes nothing", cj.Name)
	}
	tags := make(map[string]bool)
	for _, out := range cj.Outputs {
		if !opNames[out.Op] {
			return fmt.Errorf("common job %s outputs unknown op %q", cj.Name, out.Op)
		}
		if len(cj.Outputs) > 1 && out.Tag == "" {
			return fmt.Errorf("common job %s: multi-output jobs need distinct tags", cj.Name)
		}
		if out.Tag != "" && tags[out.Tag] {
			return fmt.Errorf("common job %s: duplicate output tag %q", cj.Name, out.Tag)
		}
		tags[out.Tag] = true
	}
	return nil
}

// commonMapper implements §VI.A: decode, evaluate every stream's selection,
// and emit one tagged common pair when at least one stream wants the row.
func commonMapper(inputIdx int, in CommonInput) mapreduce.Mapper {
	return mapreduce.MapperFunc(func(line string, emit mapreduce.Emit) error {
		row, err := in.Decode(line)
		if err != nil {
			return err
		}
		if row == nil {
			return nil // decoder filtered the line (e.g. foreign tag)
		}
		var excluded []int
		matched := 0
		for _, st := range in.Streams {
			ok := true
			if st.Filter != nil {
				ok, err = st.Filter(row)
				if err != nil {
					return err
				}
			}
			if ok {
				matched++
			} else {
				excluded = append(excluded, st.ID)
			}
		}
		if matched == 0 {
			return nil
		}
		keyVals, err := in.Key(row)
		if err != nil {
			return err
		}
		common := row
		if in.Project != nil {
			common = in.Project(row)
		}
		encode := in.KeyEncode
		if encode == nil {
			encode = exec.EncodeKey
		}
		emit(encode(keyVals), EncodeTagged(inputIdx, excluded, common))
		return nil
	})
}

// commonReducer implements Algorithm 1: bucket the key group's values into
// the streams allowed to see them, evaluate the operator graph, and write
// the designated outputs (tagged when the job has several). It counts the
// rows consumed by every operator so the cost model can charge the merged
// reducer's real computation (the paper's §VII.C observation that merged
// reduce phases "execute more lines of code").
type commonReducer struct {
	cj *CommonJob
	// mu guards the accounting below. Reduce itself is pure per key group —
	// the operator graph evaluates on stack-local state — so the engine may
	// run key groups concurrently (see ConcurrentReduce); only the counter
	// folds serialize, and sums commute, so totals are identical at any
	// worker count.
	mu   sync.Mutex
	work int64
	// dispatch accumulates cumulative per-operator row counts across all key
	// groups; the engine snapshots it around a job to report the per-job
	// delta (see mapreduce.DispatchReporter).
	dispatch map[string]*mapreduce.OpDispatch
}

// ConcurrentReduce implements mapreduce.ConcurrentReducer: key groups are
// independent and the shared counters above are mutex-folded.
func (cr *commonReducer) ConcurrentReduce() {}

// Reduce implements mapreduce.Reducer.
func (cr *commonReducer) Reduce(key string, values []string, emit func(string)) error {
	cj := cr.cj
	var keyRow exec.Row
	if !cj.OpaqueKeys {
		var err error
		keyRow, err = exec.DecodeRowUntyped(key)
		if err != nil {
			return err
		}
	}
	streams := make(map[int][]exec.Row)
	for _, v := range values {
		tv, err := DecodeTagged(v)
		if err != nil {
			return err
		}
		if tv.Input < 0 || tv.Input >= len(cj.Inputs) {
			return fmt.Errorf("value references input %d of %d", tv.Input, len(cj.Inputs))
		}
		for _, st := range cj.Inputs[tv.Input].Streams {
			if tv.Sees(st.ID) {
				streams[st.ID] = append(streams[st.ID], tv.Row)
			}
		}
	}
	results, stats, err := evalGraph(cj.Ops, keyRow, streams)
	if err != nil {
		return err
	}
	cr.mu.Lock()
	cr.work += stats.Work
	cr.record(stats)
	cr.mu.Unlock()
	for _, out := range cj.Outputs {
		for _, r := range results[out.Op] {
			emit(TagLine(out.Tag, exec.EncodeRow(r)))
		}
	}
	return nil
}

// ReduceWork implements mapreduce.ReduceWorkReporter.
func (cr *commonReducer) ReduceWork() int64 {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	return cr.work
}

// record folds one key group's per-operator accounting into the cumulative
// dispatch counts. The caller holds cr.mu.
func (cr *commonReducer) record(stats evalStats) {
	if cr.dispatch == nil {
		cr.dispatch = make(map[string]*mapreduce.OpDispatch, len(cr.cj.Ops))
	}
	for _, op := range cr.cj.Ops {
		name := op.Name()
		d, ok := cr.dispatch[name]
		if !ok {
			d = &mapreduce.OpDispatch{Op: name}
			cr.dispatch[name] = d
		}
		d.InRows += stats.InRows[name]
		d.OutRows += stats.OutRows[name]
	}
}

// DispatchCounts implements mapreduce.DispatchReporter: cumulative per-
// operator row counts sorted by operator name.
func (cr *commonReducer) DispatchCounts() []mapreduce.OpDispatch {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	out := make([]mapreduce.OpDispatch, 0, len(cr.dispatch))
	for _, d := range cr.dispatch {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Op < out[k].Op })
	return out
}

// buildCombiner wires map-side partial aggregation for a single-aggregation
// job (paper §I footnote 2 — the optimization that makes Hive competitive
// on plain aggregation queries).
func (cj *CommonJob) buildCombiner() (mapreduce.Combiner, error) {
	if len(cj.Inputs) != 1 || len(cj.Inputs[0].Streams) != 1 {
		return nil, fmt.Errorf("common job %s: combiner requires a single input with one stream", cj.Name)
	}
	var agg *AggOp
	for _, op := range cj.Ops {
		if op.Name() == cj.CombineOp {
			a, ok := op.(*AggOp)
			if !ok {
				return nil, fmt.Errorf("common job %s: combine op %q is not an aggregation", cj.Name, cj.CombineOp)
			}
			agg = a
		}
	}
	if agg == nil {
		return nil, fmt.Errorf("common job %s: combine op %q not found", cj.Name, cj.CombineOp)
	}
	if !agg.FromPartials {
		return nil, fmt.Errorf("common job %s: combine op %q must consume partials", cj.Name, cj.CombineOp)
	}
	kinds := make([]exec.AggKind, len(agg.Aggs))
	for i, a := range agg.Aggs {
		kinds[i] = a.Kind
	}
	if !Decomposable(kinds) {
		return nil, fmt.Errorf("common job %s: aggregates are not decomposable", cj.Name)
	}
	inputIdx := 0
	return mapreduce.CombinerFunc(func(key string, values []string) ([]string, error) {
		groupVals, err := exec.DecodeRowUntyped(key)
		if err != nil {
			return nil, err
		}
		rows := make([]exec.Row, 0, len(values))
		for _, v := range values {
			tv, err := DecodeTagged(v)
			if err != nil {
				return nil, err
			}
			rows = append(rows, tv.Row)
		}
		partial, err := buildPartialRow(groupVals, agg.Aggs, rows)
		if err != nil {
			return nil, err
		}
		return []string{EncodeTagged(inputIdx, nil, partial)}, nil
	}), nil
}
