package cmf

import (
	"strings"
	"testing"

	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/sqlparser"
)

// clicksSchema mirrors the paper's CLICKS table (uid, page, cid, ts).
var clicksSchema = exec.NewSchema(
	exec.Column{Name: "uid", Type: exec.TypeInt},
	exec.Column{Name: "page", Type: exec.TypeInt},
	exec.Column{Name: "cid", Type: exec.TypeInt},
	exec.Column{Name: "ts", Type: exec.TypeInt},
)

func decodeClicks(line string) (exec.Row, error) {
	return exec.DecodeRow(line, clicksSchema)
}

func keyOn(idx ...int) func(exec.Row) ([]exec.Value, error) {
	return func(r exec.Row) ([]exec.Value, error) {
		out := make([]exec.Value, len(idx))
		for i, x := range idx {
			out[i] = r[x]
		}
		return out, nil
	}
}

func writeClicks(dfs *mapreduce.DFS, path string, rows ...[4]int64) {
	lines := make([]string, len(rows))
	for i, r := range rows {
		lines[i] = exec.EncodeRow(exec.Row{
			exec.Int(r[0]), exec.Int(r[1]), exec.Int(r[2]), exec.Int(r[3]),
		})
	}
	dfs.Write(path, lines)
}

func runCommonJob(t *testing.T, cj *CommonJob, dfs *mapreduce.DFS) (*mapreduce.JobStats, []string) {
	t.Helper()
	job, err := cj.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	e, err := mapreduce.NewEngine(dfs, mapreduce.SmallCluster())
	if err != nil {
		t.Fatal(err)
	}
	stats, err := e.RunJob(job)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out, err := dfs.Read(cj.Output)
	if err != nil {
		t.Fatal(err)
	}
	return stats, out
}

// TestAggregationJob runs a Q-AGG style job: count clicks per category.
func TestAggregationJob(t *testing.T) {
	dfs := mapreduce.NewDFS()
	writeClicks(dfs, "clicks",
		[4]int64{1, 1, 10, 100},
		[4]int64{2, 2, 10, 110},
		[4]int64{3, 3, 20, 120},
	)
	cj := &CommonJob{
		Name: "qagg",
		Inputs: []CommonInput{{
			Path:    "clicks",
			Decode:  decodeClicks,
			Key:     keyOn(2), // cid
			Project: func(r exec.Row) exec.Row { return exec.Row{r[2]} },
			Streams: []Stream{{ID: 0}},
		}},
		Ops: []Op{&AggOp{
			OpName:  "AGG",
			In:      StreamSource(0),
			GroupBy: []RowFn{col(0)},
			Aggs:    []AggFunc{{Kind: exec.AggCountStar}},
		}},
		Outputs: []OutputSpec{{Op: "AGG"}},
		Output:  "out",
	}
	_, out := runCommonJob(t, cj, dfs)
	want := []string{"10\t2", "20\t1"}
	if strings.Join(out, "|") != strings.Join(want, "|") {
		t.Errorf("output = %v, want %v", out, want)
	}
}

// TestCombinerEquivalence verifies map-side partial aggregation produces
// identical results while shrinking the shuffle.
func TestCombinerEquivalence(t *testing.T) {
	var rows [][4]int64
	for i := int64(0); i < 120; i++ {
		rows = append(rows, [4]int64{i % 7, i, i % 3, 100 + i})
	}

	build := func(withCombiner bool) *CommonJob {
		agg := &AggOp{
			OpName:  "AGG",
			In:      StreamSource(0),
			GroupBy: []RowFn{col(0)},
			Aggs: []AggFunc{
				{Kind: exec.AggCountStar},
				{Kind: exec.AggSum, Arg: col(1)},
				{Kind: exec.AggAvg, Arg: col(1)},
				{Kind: exec.AggMax, Arg: col(1)},
			},
		}
		cj := &CommonJob{
			Name: "agg",
			Inputs: []CommonInput{{
				Path:    "clicks",
				Decode:  decodeClicks,
				Key:     keyOn(2),
				Project: func(r exec.Row) exec.Row { return exec.Row{r[2], r[3]} },
				Streams: []Stream{{ID: 0}},
			}},
			Ops:     []Op{agg},
			Outputs: []OutputSpec{{Op: "AGG"}},
			Output:  "out",
		}
		if withCombiner {
			agg.FromPartials = true
			cj.CombineOp = "AGG"
		}
		return cj
	}

	dfs1 := mapreduce.NewDFS()
	writeClicks(dfs1, "clicks", rows...)
	plainStats, plainOut := runCommonJob(t, build(false), dfs1)

	dfs2 := mapreduce.NewDFS()
	writeClicks(dfs2, "clicks", rows...)
	combStats, combOut := runCommonJob(t, build(true), dfs2)

	if strings.Join(plainOut, "|") != strings.Join(combOut, "|") {
		t.Errorf("combiner changed results:\nplain: %v\ncomb:  %v", plainOut, combOut)
	}
	if combStats.ShuffleBytes >= plainStats.ShuffleBytes {
		t.Errorf("combiner did not shrink shuffle: %d >= %d",
			combStats.ShuffleBytes, plainStats.ShuffleBytes)
	}
}

// TestSelfJoinSingleScan exercises the paper's §V.A optimization: one scan
// of clicks feeds both instances of a self-join, with exclusion tags
// marking which instance each record belongs to.
func TestSelfJoinSingleScan(t *testing.T) {
	dfs := mapreduce.NewDFS()
	writeClicks(dfs, "clicks",
		[4]int64{1, 1, 10, 100}, // uid 1, category X
		[4]int64{1, 2, 20, 200}, // uid 1, category Y
		[4]int64{2, 3, 10, 150}, // uid 2, category X (no Y partner)
		[4]int64{3, 4, 20, 300}, // uid 3, category Y (no X partner)
	)
	catX := func(r exec.Row) (bool, error) { return r[2].I == 10, nil }
	catY := func(r exec.Row) (bool, error) { return r[2].I == 20, nil }
	cj := &CommonJob{
		Name: "selfjoin",
		Inputs: []CommonInput{{
			Path:    "clicks",
			Decode:  decodeClicks,
			Key:     keyOn(0), // uid
			Project: func(r exec.Row) exec.Row { return exec.Row{r[0], r[3]} },
			Streams: []Stream{
				{ID: 0, Filter: catX},
				{ID: 1, Filter: catY},
			},
		}},
		Ops: []Op{&JoinOp{
			OpName: "JOIN1",
			Left:   StreamSource(0), Right: StreamSource(1),
			LeftWidth: 2, RightWidth: 2,
			Type:     sqlparser.InnerJoin,
			Residual: func(r exec.Row) (bool, error) { return r[1].I < r[3].I, nil },
		}},
		Outputs: []OutputSpec{{Op: "JOIN1"}},
		Output:  "out",
	}
	stats, out := runCommonJob(t, cj, dfs)
	// Only uid 1 has both categories with ts 100 < 200.
	if len(out) != 1 || out[0] != "1\t100\t1\t200" {
		t.Errorf("output = %v, want [1\\t100\\t1\\t200]", out)
	}
	// The single scan reads clicks exactly once.
	if stats.MapInputRecords != 4 {
		t.Errorf("map input records = %d, want 4 (one scan)", stats.MapInputRecords)
	}
	// Every emitted pair belongs to exactly one instance here, so all carry
	// an exclusion tag; the map output must still be one pair per record.
	if stats.MapOutputRecords != 4 {
		t.Errorf("map output records = %d, want 4", stats.MapOutputRecords)
	}
}

// TestMergedJobWithPostJoin reproduces the Fig. 6 structure in miniature:
// one job computes an aggregation and a join over the same scan, then a
// post-job join combines them in the same reduce invocation.
func TestMergedJobWithPostJoin(t *testing.T) {
	dfs := mapreduce.NewDFS()
	// "lineitem": partkey, quantity.
	dfs.Write("lineitem", []string{"1\t4", "1\t8", "2\t10"})
	// "part": partkey, name.
	dfs.Write("part", []string{"1\twidget", "2\tsprocket"})
	liSchema := exec.NewSchema(
		exec.Column{Name: "pk", Type: exec.TypeInt},
		exec.Column{Name: "qty", Type: exec.TypeInt},
	)
	partSchema := exec.NewSchema(
		exec.Column{Name: "pk", Type: exec.TypeInt},
		exec.Column{Name: "name", Type: exec.TypeString},
	)
	cj := &CommonJob{
		Name: "q17ish",
		Inputs: []CommonInput{
			{
				Path:    "lineitem",
				Decode:  func(l string) (exec.Row, error) { return exec.DecodeRow(l, liSchema) },
				Key:     keyOn(0),
				Streams: []Stream{{ID: 0}},
			},
			{
				Path:    "part",
				Decode:  func(l string) (exec.Row, error) { return exec.DecodeRow(l, partSchema) },
				Key:     keyOn(0),
				Streams: []Stream{{ID: 1}},
			},
		},
		Ops: []Op{
			// inner: avg(qty) per partkey over the lineitem stream.
			&AggOp{
				OpName: "AGG1", In: StreamSource(0),
				GroupBy: []RowFn{col(0)},
				Aggs:    []AggFunc{{Kind: exec.AggAvg, Arg: col(1)}},
			},
			// outer: lineitem ⋈ part within the key group.
			&JoinOp{
				OpName: "JOIN1",
				Left:   StreamSource(0), Right: StreamSource(1),
				LeftWidth: 2, RightWidth: 2, Type: sqlparser.InnerJoin,
			},
			// post-job: outer ⋈ inner, keep rows with qty < avg.
			&JoinOp{
				OpName: "JOIN2",
				Left:   OpSource("JOIN1"), Right: OpSource("AGG1"),
				LeftWidth: 4, RightWidth: 2, Type: sqlparser.InnerJoin,
				Residual: func(r exec.Row) (bool, error) {
					qty, _ := r[1].AsFloat()
					avg, _ := r[5].AsFloat()
					return qty < avg, nil
				},
			},
		},
		Outputs: []OutputSpec{{Op: "JOIN2"}},
		Output:  "out",
	}
	stats, out := runCommonJob(t, cj, dfs)
	// partkey 1: avg 6; rows with qty 4 pass, qty 8 fails. partkey 2: avg 10, qty 10 fails.
	if len(out) != 1 || !strings.HasPrefix(out[0], "1\t4\t1\twidget") {
		t.Errorf("output = %v", out)
	}
	if stats.MapInputRecords != 5 {
		t.Errorf("map input = %d, want 5 (each table scanned once)", stats.MapInputRecords)
	}
}

// TestMultiOutputTags checks the IC/TC-only merge shape: one job writes
// results of two merged operations into one file with source tags.
func TestMultiOutputTags(t *testing.T) {
	dfs := mapreduce.NewDFS()
	writeClicks(dfs, "clicks",
		[4]int64{1, 1, 10, 100},
		[4]int64{1, 2, 20, 200},
		[4]int64{2, 3, 10, 300},
	)
	cj := &CommonJob{
		Name: "ictc",
		Inputs: []CommonInput{{
			Path:    "clicks",
			Decode:  decodeClicks,
			Key:     keyOn(0),
			Project: func(r exec.Row) exec.Row { return exec.Row{r[0], r[3]} },
			Streams: []Stream{{ID: 0}},
		}},
		Ops: []Op{
			&AggOp{OpName: "AGG1", In: StreamSource(0),
				GroupBy: []RowFn{col(0)},
				Aggs:    []AggFunc{{Kind: exec.AggCountStar}}},
			&AggOp{OpName: "AGG2", In: StreamSource(0),
				GroupBy: []RowFn{col(0)},
				Aggs:    []AggFunc{{Kind: exec.AggMax, Arg: col(1)}}},
		},
		Outputs: []OutputSpec{{Op: "AGG1", Tag: "A1"}, {Op: "AGG2", Tag: "A2"}},
		Output:  "out",
	}
	_, out := runCommonJob(t, cj, dfs)
	var a1, a2 []string
	for _, line := range out {
		tag, payload := SplitTag(line)
		switch tag {
		case "A1":
			a1 = append(a1, payload)
		case "A2":
			a2 = append(a2, payload)
		default:
			t.Errorf("unexpected tag %q in %q", tag, line)
		}
	}
	if strings.Join(a1, "|") != "1\t2|2\t1" {
		t.Errorf("AGG1 = %v", a1)
	}
	if strings.Join(a2, "|") != "1\t200|2\t300" {
		t.Errorf("AGG2 = %v", a2)
	}
}

func TestCommonJobValidation(t *testing.T) {
	base := func() *CommonJob {
		return &CommonJob{
			Name: "x",
			Inputs: []CommonInput{{
				Path: "p", Decode: decodeClicks, Key: keyOn(0),
				Streams: []Stream{{ID: 0}},
			}},
			Ops: []Op{&FilterOp{OpName: "f", In: StreamSource(0),
				Pred: func(exec.Row) (bool, error) { return true, nil }}},
			Outputs: []OutputSpec{{Op: "f"}},
			Output:  "o",
		}
	}
	tests := []struct {
		name   string
		mutate func(*CommonJob)
		want   string
	}{
		{"no name", func(c *CommonJob) { c.Name = "" }, "no name"},
		{"no inputs", func(c *CommonJob) { c.Inputs = nil }, "no inputs"},
		{"no decode", func(c *CommonJob) { c.Inputs[0].Decode = nil }, "Decode"},
		{"no streams", func(c *CommonJob) { c.Inputs[0].Streams = nil }, "no streams"},
		{"dup stream", func(c *CommonJob) {
			c.Inputs[0].Streams = []Stream{{ID: 0}, {ID: 0}}
		}, "duplicate stream"},
		{"unknown op output", func(c *CommonJob) { c.Outputs[0].Op = "zzz" }, "unknown op"},
		{"unknown stream", func(c *CommonJob) {
			c.Ops = []Op{&FilterOp{OpName: "f", In: StreamSource(9),
				Pred: func(exec.Row) (bool, error) { return true, nil }}}
		}, "unknown stream"},
		{"no outputs", func(c *CommonJob) { c.Outputs = nil }, "writes nothing"},
		{"multi-output needs tags", func(c *CommonJob) {
			c.Outputs = []OutputSpec{{Op: "f"}, {Op: "f", Tag: "t"}}
		}, "tags"},
		{"combiner needs agg", func(c *CommonJob) { c.CombineOp = "f" }, "not an aggregation"},
		{"combiner unknown op", func(c *CommonJob) { c.CombineOp = "zzz" }, "not found"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cj := base()
			tt.mutate(cj)
			_, err := cj.Build()
			if err == nil {
				t.Fatalf("Build succeeded, want error containing %q", tt.want)
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestCombinerRequiresDecomposable(t *testing.T) {
	agg := &AggOp{
		OpName: "AGG", In: StreamSource(0),
		GroupBy:      []RowFn{col(0)},
		Aggs:         []AggFunc{{Kind: exec.AggCountDistinct, Arg: col(1)}},
		FromPartials: true,
	}
	cj := &CommonJob{
		Name: "x",
		Inputs: []CommonInput{{
			Path: "p", Decode: decodeClicks, Key: keyOn(0),
			Streams: []Stream{{ID: 0}},
		}},
		Ops:       []Op{agg},
		Outputs:   []OutputSpec{{Op: "AGG"}},
		Output:    "o",
		CombineOp: "AGG",
	}
	if _, err := cj.Build(); err == nil || !strings.Contains(err.Error(), "decomposable") {
		t.Errorf("err = %v, want decomposable error", err)
	}
}

// TestGlobalAggregationJob checks the empty-key path used by final
// aggregations like Q-CSA's AGG4 (one reduce group holds everything).
func TestGlobalAggregationJob(t *testing.T) {
	dfs := mapreduce.NewDFS()
	dfs.Write("in", []string{"1\t10", "2\t20", "3\t30"})
	schema := exec.NewSchema(
		exec.Column{Name: "k", Type: exec.TypeInt},
		exec.Column{Name: "v", Type: exec.TypeInt},
	)
	cj := &CommonJob{
		Name: "global",
		Inputs: []CommonInput{{
			Path:    "in",
			Decode:  func(l string) (exec.Row, error) { return exec.DecodeRow(l, schema) },
			Key:     func(exec.Row) ([]exec.Value, error) { return nil, nil },
			Streams: []Stream{{ID: 0}},
		}},
		Ops: []Op{&AggOp{
			OpName: "AGG", In: StreamSource(0),
			Aggs: []AggFunc{{Kind: exec.AggAvg, Arg: col(1)}},
		}},
		Outputs:        []OutputSpec{{Op: "AGG"}},
		Output:         "out",
		NumReduceTasks: 1,
	}
	_, out := runCommonJob(t, cj, dfs)
	if len(out) != 1 || out[0] != "20.0" {
		t.Errorf("global avg = %v, want [20.0]", out)
	}
}
