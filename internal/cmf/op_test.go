package cmf

import (
	"strings"
	"testing"

	"ysmart/internal/exec"
	"ysmart/internal/sqlparser"
)

func intRow(vals ...int64) exec.Row {
	r := make(exec.Row, len(vals))
	for i, v := range vals {
		r[i] = exec.Int(v)
	}
	return r
}

func col(i int) RowFn {
	return func(r exec.Row) (exec.Value, error) { return r[i], nil }
}

func TestJoinOpInner(t *testing.T) {
	j := &JoinOp{
		OpName: "j", Left: StreamSource(0), Right: StreamSource(1),
		LeftWidth: 2, RightWidth: 2, Type: sqlparser.InnerJoin,
	}
	streams := map[int][]exec.Row{
		0: {intRow(1, 10), intRow(1, 20)},
		1: {intRow(1, 100), intRow(1, 200)},
	}
	out, err := j.Eval(intRow(1), [][]exec.Row{streams[0], streams[1]})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 4 {
		t.Fatalf("inner join rows = %d, want 4 (cross within key)", len(out))
	}
	if len(out[0]) != 4 {
		t.Errorf("row width = %d, want 4", len(out[0]))
	}
}

func TestJoinOpResidual(t *testing.T) {
	j := &JoinOp{
		OpName: "j", Left: StreamSource(0), Right: StreamSource(1),
		LeftWidth: 2, RightWidth: 2, Type: sqlparser.InnerJoin,
		Residual: func(r exec.Row) (bool, error) { return r[1].I < r[3].I, nil },
	}
	out, err := j.Eval(nil, [][]exec.Row{
		{intRow(1, 10), intRow(1, 300)},
		{intRow(1, 100), intRow(1, 200)},
	})
	if err != nil {
		t.Fatal(err)
	}
	// (10,100), (10,200) pass; 300 pairs fail.
	if len(out) != 2 {
		t.Fatalf("residual join rows = %d, want 2", len(out))
	}
}

func TestJoinOpOuterVariants(t *testing.T) {
	mk := func(typ sqlparser.JoinType) []exec.Row {
		j := &JoinOp{
			OpName: "j", Left: StreamSource(0), Right: StreamSource(1),
			LeftWidth: 1, RightWidth: 1, Type: typ,
			Residual: func(r exec.Row) (bool, error) {
				return !r[0].IsNull() && !r[1].IsNull() && r[0].I == r[1].I, nil
			},
		}
		out, err := j.Eval(nil, [][]exec.Row{
			{intRow(1), intRow(2)},
			{intRow(2), intRow(3)},
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	if out := mk(sqlparser.InnerJoin); len(out) != 1 {
		t.Errorf("inner = %v, want 1 row", out)
	}
	left := mk(sqlparser.LeftOuterJoin)
	if len(left) != 2 {
		t.Fatalf("left outer = %v, want 2 rows", left)
	}
	foundNullExt := false
	for _, r := range left {
		if r[0].I == 1 && r[1].IsNull() {
			foundNullExt = true
		}
	}
	if !foundNullExt {
		t.Errorf("left outer missing null extension: %v", left)
	}
	if out := mk(sqlparser.RightOuterJoin); len(out) != 2 {
		t.Errorf("right outer = %v, want 2 rows", out)
	}
	if out := mk(sqlparser.FullOuterJoin); len(out) != 3 {
		t.Errorf("full outer = %v, want 3 rows", out)
	}
}

func TestJoinOpEmptySides(t *testing.T) {
	j := &JoinOp{
		OpName: "j", Left: StreamSource(0), Right: StreamSource(1),
		LeftWidth: 1, RightWidth: 1, Type: sqlparser.LeftOuterJoin,
	}
	// Left rows, empty right: all null-extended.
	out, err := j.Eval(nil, [][]exec.Row{{intRow(1), intRow(2)}, nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || !out[0][1].IsNull() {
		t.Errorf("left outer with empty right = %v", out)
	}
	// Inner join with an empty side yields nothing.
	j.Type = sqlparser.InnerJoin
	out, err = j.Eval(nil, [][]exec.Row{{intRow(1)}, nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("inner join with empty side = %v, want none", out)
	}
}

func TestJoinOpProjection(t *testing.T) {
	j := &JoinOp{
		OpName: "j", Left: StreamSource(0), Right: StreamSource(1),
		LeftProj: []int{1}, RightProj: []int{0},
		LeftWidth: 1, RightWidth: 1, Type: sqlparser.InnerJoin,
	}
	out, err := j.Eval(nil, [][]exec.Row{
		{intRow(1, 10)},
		{intRow(100, 7)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][0].I != 10 || out[0][1].I != 100 {
		t.Errorf("projected join = %v, want [[10 100]]", out)
	}
}

func TestAggOpGrouped(t *testing.T) {
	a := &AggOp{
		OpName: "a", In: StreamSource(0),
		GroupBy: []RowFn{col(0)},
		Aggs: []AggFunc{
			{Kind: exec.AggCountStar},
			{Kind: exec.AggSum, Arg: col(1)},
			{Kind: exec.AggMin, Arg: col(1)},
		},
	}
	out, err := a.Eval(nil, [][]exec.Row{{
		intRow(1, 10), intRow(2, 5), intRow(1, 30), intRow(2, 7),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 {
		t.Fatalf("groups = %d, want 2", len(out))
	}
	// Deterministic order by encoded group key: "1" then "2".
	if out[0][0].I != 1 || out[0][1].I != 2 || out[0][2].I != 40 || out[0][3].I != 10 {
		t.Errorf("group 1 = %v", out[0])
	}
	if out[1][0].I != 2 || out[1][2].I != 12 || out[1][3].I != 5 {
		t.Errorf("group 2 = %v", out[1])
	}
}

func TestAggOpGlobalEmptyInput(t *testing.T) {
	a := &AggOp{
		OpName: "a", In: StreamSource(0),
		Aggs: []AggFunc{{Kind: exec.AggCountStar}, {Kind: exec.AggSum, Arg: col(0)}},
	}
	out, err := a.Eval(nil, [][]exec.Row{nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][0].I != 0 || !out[0][1].IsNull() {
		t.Errorf("global agg over empty input = %v, want [0 NULL]", out)
	}

	// Grouped aggregate over empty input yields no rows.
	a.GroupBy = []RowFn{col(0)}
	out, err = a.Eval(nil, [][]exec.Row{nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("grouped agg over empty input = %v, want none", out)
	}
}

func TestAggOpCountDistinct(t *testing.T) {
	a := &AggOp{
		OpName: "a", In: StreamSource(0),
		GroupBy: []RowFn{col(0)},
		Aggs:    []AggFunc{{Kind: exec.AggCountDistinct, Arg: col(1)}, {Kind: exec.AggMax, Arg: col(1)}},
	}
	out, err := a.Eval(nil, [][]exec.Row{{
		intRow(1, 5), intRow(1, 5), intRow(1, 9),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0][1].I != 2 || out[0][2].I != 9 {
		t.Errorf("count distinct = %v, want [1 2 9]", out)
	}
}

func TestFilterProjectSortOps(t *testing.T) {
	filter := &FilterOp{
		OpName: "f", In: StreamSource(0),
		Pred: func(r exec.Row) (bool, error) { return r[0].I > 1, nil },
	}
	project := &ProjectOp{
		OpName: "p", In: OpSource("f"),
		Exprs: []RowFn{col(1), func(r exec.Row) (exec.Value, error) {
			return exec.Int(r[0].I * 10), nil
		}},
	}
	sortOp := &SortOp{
		OpName: "s", In: OpSource("p"),
		Keys: []SortKey{{Fn: col(0), Desc: true}},
	}
	streams := map[int][]exec.Row{
		0: {intRow(1, 100), intRow(2, 300), intRow(3, 200)},
	}
	results, _, err := evalGraph([]Op{filter, project, sortOp}, nil, streams)
	if err != nil {
		t.Fatal(err)
	}
	if len(results["f"]) != 2 {
		t.Errorf("filter = %v", results["f"])
	}
	s := results["s"]
	if len(s) != 2 || s[0][0].I != 300 || s[1][0].I != 200 {
		t.Errorf("sorted = %v, want [[300 20] [200 30]]", s)
	}
}

func TestSortOpLimit(t *testing.T) {
	s := &SortOp{
		OpName: "s", In: StreamSource(0),
		Keys:  []SortKey{{Fn: col(0)}},
		Limit: 2,
	}
	out, err := s.Eval(nil, [][]exec.Row{{intRow(3), intRow(1), intRow(2)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0][0].I != 1 || out[1][0].I != 2 {
		t.Errorf("limited sort = %v", out)
	}
}

func TestEvalGraphErrors(t *testing.T) {
	// Unknown op source.
	_, _, err := evalGraph([]Op{
		&FilterOp{OpName: "f", In: OpSource("missing"), Pred: func(exec.Row) (bool, error) { return true, nil }},
	}, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown op") {
		t.Errorf("err = %v, want unknown op", err)
	}
	// Cycle.
	a := &FilterOp{OpName: "a", In: OpSource("b"), Pred: func(exec.Row) (bool, error) { return true, nil }}
	b := &FilterOp{OpName: "b", In: OpSource("a"), Pred: func(exec.Row) (bool, error) { return true, nil }}
	_, _, err = evalGraph([]Op{a, b}, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Errorf("err = %v, want cycle", err)
	}
	// Duplicate names.
	_, _, err = evalGraph([]Op{a, a}, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("err = %v, want duplicate", err)
	}
}
