package cmf

import (
	"fmt"
	"sort"

	"ysmart/internal/exec"
	"ysmart/internal/sqlparser"
)

// Source names where an operator's input rows come from: either a mapper
// stream (a merged job's map output) or the per-key results of another
// operator in the same common job (a post-job computation input).
type Source struct {
	Stream int    // valid when Op == ""
	Op     string // non-empty for post-job inputs
}

// StreamSource references mapper stream id.
func StreamSource(id int) Source { return Source{Stream: id} }

// OpSource references another operator's results.
func OpSource(name string) Source { return Source{Op: name} }

// IsOp reports whether the source is another operator.
func (s Source) IsOp() bool { return s.Op != "" }

// String renders the source for diagnostics and DOT labels.
func (s Source) String() string {
	if s.IsOp() {
		return "op:" + s.Op
	}
	return fmt.Sprintf("stream:%d", s.Stream)
}

// RowPred evaluates a predicate over a row.
type RowPred func(exec.Row) (bool, error)

// RowFn computes a value from a row.
type RowFn func(exec.Row) (exec.Value, error)

// Op is one operator of a common job's per-key dataflow. Operators are
// evaluated once per reduce key over the rows of that key group.
type Op interface {
	// Name identifies the operator inside the job.
	Name() string
	// Sources lists the operator's inputs.
	Sources() []Source
	// Eval computes the operator's result rows for one key group. inputs
	// holds the rows of each source in Sources() order.
	Eval(key exec.Row, inputs [][]exec.Row) ([]exec.Row, error)
}

// ---------------------------------------------------------------------------
// JoinOp
// ---------------------------------------------------------------------------

// JoinOp joins two inputs within a key group. Because merged jobs share the
// partition key, the equi-join condition is already satisfied by key
// equality; only the residual predicate remains to be checked per pair
// (paper §IV.B: "join with the same partition").
type JoinOp struct {
	OpName      string
	Left, Right Source
	// LeftProj/RightProj select columns of stream rows (nil = identity).
	// Projections are ignored for op sources, whose rows are already shaped.
	LeftProj, RightProj []int
	// LeftWidth/RightWidth are the input row widths after projection, used
	// for null extension in outer joins.
	LeftWidth, RightWidth int
	Type                  sqlparser.JoinType
	// Residual, if non-nil, must pass for a pair to match; it sees the
	// concatenated (left ++ right) row.
	Residual RowPred
}

// Name implements Op.
func (j *JoinOp) Name() string { return j.OpName }

// Sources implements Op.
func (j *JoinOp) Sources() []Source { return []Source{j.Left, j.Right} }

// Eval implements Op.
func (j *JoinOp) Eval(_ exec.Row, inputs [][]exec.Row) ([]exec.Row, error) {
	left := projectRows(inputs[0], j.LeftProj, !j.Left.IsOp())
	right := projectRows(inputs[1], j.RightProj, !j.Right.IsOp())

	var out []exec.Row
	rightMatched := make([]bool, len(right))
	for _, l := range left {
		matched := false
		for ri, r := range right {
			pair := exec.Concat(l, r)
			if j.Residual != nil {
				ok, err := j.Residual(pair)
				if err != nil {
					return nil, fmt.Errorf("join %s residual: %w", j.OpName, err)
				}
				if !ok {
					continue
				}
			}
			matched = true
			rightMatched[ri] = true
			out = append(out, pair)
		}
		if !matched && (j.Type == sqlparser.LeftOuterJoin || j.Type == sqlparser.FullOuterJoin) {
			out = append(out, exec.Concat(l, exec.NullRow(j.RightWidth)))
		}
	}
	if j.Type == sqlparser.RightOuterJoin || j.Type == sqlparser.FullOuterJoin {
		for ri, r := range right {
			if !rightMatched[ri] {
				out = append(out, exec.Concat(exec.NullRow(j.LeftWidth), r))
			}
		}
	}
	return out, nil
}

func projectRows(rows []exec.Row, proj []int, apply bool) []exec.Row {
	if !apply || proj == nil {
		return rows
	}
	out := make([]exec.Row, len(rows))
	for i, r := range rows {
		pr := make(exec.Row, len(proj))
		for pi, idx := range proj {
			pr[pi] = r[idx]
		}
		out[i] = pr
	}
	return out
}

// ---------------------------------------------------------------------------
// AggOp
// ---------------------------------------------------------------------------

// AggFunc is one aggregate computed by an AggOp.
type AggFunc struct {
	Kind exec.AggKind
	// Arg computes the aggregate input from a row; nil for COUNT(*).
	Arg RowFn
}

// AggOp groups its input rows (within the key group) by the GroupBy columns
// and computes aggregates. Its output rows are the group values followed by
// the aggregate results. Merged aggregations are correct because job-flow
// correlation guarantees the reduce partition key is a subset of the
// grouping columns (paper §IV.A scenario 1).
type AggOp struct {
	OpName string
	In     Source
	InProj []int // projection applied to stream rows (nil = identity)
	// GroupBy computes the grouping values from an input row; empty means a
	// single (global-within-key) group.
	GroupBy []RowFn
	Aggs    []AggFunc
	// FromPartials switches the op to merge combiner-produced partial rows
	// (group values ++ partial fields) instead of raw rows.
	FromPartials bool
}

// Name implements Op.
func (a *AggOp) Name() string { return a.OpName }

// Sources implements Op.
func (a *AggOp) Sources() []Source { return []Source{a.In} }

// Eval implements Op.
func (a *AggOp) Eval(_ exec.Row, inputs [][]exec.Row) ([]exec.Row, error) {
	rows := projectRows(inputs[0], a.InProj, !a.In.IsOp())
	if a.FromPartials {
		return a.evalFromPartials(rows)
	}

	type group struct {
		vals exec.Row
		accs []exec.Accumulator
	}
	groups := make(map[string]*group)
	var order []string
	for _, r := range rows {
		gvals := make(exec.Row, len(a.GroupBy))
		for i, fn := range a.GroupBy {
			v, err := fn(r)
			if err != nil {
				return nil, fmt.Errorf("agg %s group: %w", a.OpName, err)
			}
			gvals[i] = v
		}
		key := exec.EncodeKey(gvals)
		g, ok := groups[key]
		if !ok {
			g = &group{vals: gvals, accs: make([]exec.Accumulator, len(a.Aggs))}
			for i, spec := range a.Aggs {
				g.accs[i] = exec.NewAccumulator(spec.Kind)
			}
			groups[key] = g
			order = append(order, key)
		}
		for i, spec := range a.Aggs {
			if spec.Arg == nil {
				g.accs[i].Add(exec.Int(1))
				continue
			}
			v, err := spec.Arg(r)
			if err != nil {
				return nil, fmt.Errorf("agg %s arg: %w", a.OpName, err)
			}
			g.accs[i].Add(v)
		}
	}
	// A global aggregate over zero rows still yields one row (SQL
	// semantics); grouped aggregates yield no rows.
	if len(order) == 0 && len(a.GroupBy) == 0 {
		out := make(exec.Row, len(a.Aggs))
		for i, spec := range a.Aggs {
			out[i] = exec.NewAccumulator(spec.Kind).Result()
		}
		return []exec.Row{out}, nil
	}
	sort.Strings(order)
	out := make([]exec.Row, 0, len(order))
	for _, key := range order {
		g := groups[key]
		row := make(exec.Row, 0, len(g.vals)+len(g.accs))
		row = append(row, g.vals...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		out = append(out, row)
	}
	return out, nil
}

// evalFromPartials merges partial rows (see partial.go) that all belong to
// one final group: the reduce key of a combined aggregation job is the full
// grouping key, so every partial row in the group shares its group values.
func (a *AggOp) evalFromPartials(rows []exec.Row) ([]exec.Row, error) {
	if len(rows) == 0 {
		return nil, nil
	}
	nGroup := len(a.GroupBy)
	states := make([]partialState, len(a.Aggs))
	for i, spec := range a.Aggs {
		states[i] = newPartialState(spec.Kind)
	}
	for _, r := range rows {
		off := nGroup
		for i, spec := range a.Aggs {
			w := partialWidth(spec.Kind)
			if off+w > len(r) {
				return nil, fmt.Errorf("agg %s: partial row too short (%d cols)", a.OpName, len(r))
			}
			if err := states[i].merge(r[off : off+w]); err != nil {
				return nil, fmt.Errorf("agg %s: %w", a.OpName, err)
			}
			off += w
		}
	}
	out := make(exec.Row, 0, nGroup+len(a.Aggs))
	out = append(out, rows[0][:nGroup]...)
	for _, st := range states {
		out = append(out, st.result())
	}
	return []exec.Row{out}, nil
}

// ---------------------------------------------------------------------------
// FilterOp, ProjectOp, SortOp
// ---------------------------------------------------------------------------

// FilterOp keeps input rows passing Pred.
type FilterOp struct {
	OpName string
	In     Source
	InProj []int
	Pred   RowPred
}

// Name implements Op.
func (f *FilterOp) Name() string { return f.OpName }

// Sources implements Op.
func (f *FilterOp) Sources() []Source { return []Source{f.In} }

// Eval implements Op.
func (f *FilterOp) Eval(_ exec.Row, inputs [][]exec.Row) ([]exec.Row, error) {
	rows := projectRows(inputs[0], f.InProj, !f.In.IsOp())
	var out []exec.Row
	for _, r := range rows {
		ok, err := f.Pred(r)
		if err != nil {
			return nil, fmt.Errorf("filter %s: %w", f.OpName, err)
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

// ProjectOp computes expression columns over each input row.
type ProjectOp struct {
	OpName string
	In     Source
	InProj []int
	Exprs  []RowFn
}

// Name implements Op.
func (p *ProjectOp) Name() string { return p.OpName }

// Sources implements Op.
func (p *ProjectOp) Sources() []Source { return []Source{p.In} }

// Eval implements Op.
func (p *ProjectOp) Eval(_ exec.Row, inputs [][]exec.Row) ([]exec.Row, error) {
	rows := projectRows(inputs[0], p.InProj, !p.In.IsOp())
	out := make([]exec.Row, 0, len(rows))
	for _, r := range rows {
		pr := make(exec.Row, len(p.Exprs))
		for i, fn := range p.Exprs {
			v, err := fn(r)
			if err != nil {
				return nil, fmt.Errorf("project %s: %w", p.OpName, err)
			}
			pr[i] = v
		}
		out = append(out, pr)
	}
	return out, nil
}

// SortKey is one ordering key of a SortOp.
type SortKey struct {
	Fn   RowFn
	Desc bool
}

// SortOp orders its input rows. It is used in single-reduce-task SORT jobs
// where the key group contains the whole data set.
type SortOp struct {
	OpName string
	In     Source
	InProj []int
	Keys   []SortKey
	// Limit keeps only the first Limit rows after sorting (0 = all).
	Limit int
}

// Name implements Op.
func (s *SortOp) Name() string { return s.OpName }

// Sources implements Op.
func (s *SortOp) Sources() []Source { return []Source{s.In} }

// Eval implements Op.
func (s *SortOp) Eval(_ exec.Row, inputs [][]exec.Row) ([]exec.Row, error) {
	rows := projectRows(inputs[0], s.InProj, !s.In.IsOp())
	out := make([]exec.Row, len(rows))
	copy(out, rows)
	var evalErr error
	sort.SliceStable(out, func(i, k int) bool {
		for _, key := range s.Keys {
			vi, err := key.Fn(out[i])
			if err != nil {
				evalErr = err
				return false
			}
			vk, err := key.Fn(out[k])
			if err != nil {
				evalErr = err
				return false
			}
			c := exec.Compare(vi, vk)
			if c == 0 {
				continue
			}
			if key.Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	if evalErr != nil {
		return nil, fmt.Errorf("sort %s: %w", s.OpName, evalErr)
	}
	if s.Limit > 0 && len(out) > s.Limit {
		out = out[:s.Limit]
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Graph evaluation
// ---------------------------------------------------------------------------

// evalStats is the accounting of one evalGraph invocation: the billable
// work (rows consumed by relational operators — the quantity the cost model
// charges for the common reducer "executing more lines of code" than a
// single-operation reducer, paper §VII.C) plus per-operator in/out row
// counts the observability layer reports as dispatch counts.
type evalStats struct {
	Work    int64
	InRows  map[string]int64
	OutRows map[string]int64
}

// evalGraph runs the operators over one key group. streams maps stream ID
// to its rows. It returns each operator's result rows by name plus the
// invocation's accounting.
func evalGraph(ops []Op, key exec.Row, streams map[int][]exec.Row) (map[string][]exec.Row, evalStats, error) {
	stats := evalStats{
		InRows:  make(map[string]int64, len(ops)),
		OutRows: make(map[string]int64, len(ops)),
	}
	byName := make(map[string]Op, len(ops))
	for _, op := range ops {
		if _, dup := byName[op.Name()]; dup {
			return nil, stats, fmt.Errorf("duplicate op %q", op.Name())
		}
		byName[op.Name()] = op
	}
	results := make(map[string][]exec.Row, len(ops))
	state := make(map[string]int, len(ops)) // 1 visiting, 2 done

	var eval func(name string) error
	eval = func(name string) error {
		switch state[name] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("op cycle through %q", name)
		}
		op, ok := byName[name]
		if !ok {
			return fmt.Errorf("unknown op %q", name)
		}
		state[name] = 1
		srcs := op.Sources()
		inputs := make([][]exec.Row, len(srcs))
		for i, s := range srcs {
			if s.IsOp() {
				if err := eval(s.Op); err != nil {
					return err
				}
				inputs[i] = results[s.Op]
			} else {
				inputs[i] = streams[s.Stream]
			}
			stats.InRows[name] += int64(len(inputs[i]))
			// Only relational operators count as work: chain filters and
			// projections are the column-level plumbing a one-to-one
			// translation runs (uncounted) in its map phases.
			switch op.(type) {
			case *JoinOp, *AggOp, *SortOp:
				stats.Work += int64(len(inputs[i]))
			}
		}
		rows, err := op.Eval(key, inputs)
		if err != nil {
			return err
		}
		results[op.Name()] = rows
		stats.OutRows[name] += int64(len(rows))
		state[name] = 2
		return nil
	}
	for _, op := range ops {
		if err := eval(op.Name()); err != nil {
			return nil, stats, err
		}
	}
	return results, stats, nil
}
