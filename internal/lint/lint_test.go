package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestCorpora runs the full suite over each analyzer's golden corpus
// and checks the diagnostics against the // want comments — both that
// every finding is expected and that every expectation fires.
func TestCorpora(t *testing.T) {
	for _, corpus := range []string{"determinism", "tagdispatch", "spanpair", "deprecated", "sharecheck", "concreduce", "lockorder", "goleak", "lockheld"} {
		t.Run(corpus, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", corpus)
			problems, err := CheckCorpus(dir, Analyzers)
			if err != nil {
				t.Fatalf("CheckCorpus(%s): %v", dir, err)
			}
			for _, p := range problems {
				t.Error(p)
			}
		})
	}
}

// TestCorporaFail: each corpus must actually produce diagnostics when
// run through the public driver (the CLI's exit-1 path); a corpus that
// goes silent means its analyzer regressed.
func TestCorporaFail(t *testing.T) {
	for _, corpus := range []string{"determinism", "tagdispatch", "spanpair", "deprecated", "sharecheck", "concreduce", "lockorder", "goleak", "lockheld"} {
		t.Run(corpus, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", corpus)
			diags, err := Vet(dir, []string{"."}, Analyzers)
			if err != nil {
				t.Fatalf("Vet(%s): %v", dir, err)
			}
			if len(diags) == 0 {
				t.Fatalf("corpus %s produced no diagnostics", corpus)
			}
			for _, d := range diags {
				if d.Pos.Filename == "" || d.Pos.Line == 0 {
					t.Errorf("diagnostic without position: %s", d)
				}
				if !strings.Contains(d.Pos.Filename, corpus) {
					t.Errorf("diagnostic outside corpus: %s", d)
				}
			}
		})
	}
}

// TestKitchenIgnored: the kitchen corpus holds one instance of every
// diagnostic kind, each silenced with lint:ignore; the driver must
// report nothing.
func TestKitchenIgnored(t *testing.T) {
	dir := filepath.Join("testdata", "src", "kitchen")
	diags, err := Vet(dir, []string{"."}, Analyzers)
	if err != nil {
		t.Fatalf("Vet(kitchen): %v", err)
	}
	for _, d := range diags {
		t.Errorf("lint:ignore did not silence: %s", d)
	}
}

// TestAnalyzerScopes: ./... expansion applies package scopes (the
// determinism analyzer must not run outside the replayed packages), and
// explicit directory targets bypass them.
func TestAnalyzerScopes(t *testing.T) {
	if !Determinism.appliesTo("internal/mapreduce") {
		t.Error("determinism must cover internal/mapreduce")
	}
	if Determinism.appliesTo("internal/obs") {
		t.Error("determinism must not cover internal/obs (exporters sort maps themselves)")
	}
	if !SpanPair.appliesTo("internal/obs") || !Deprecated.appliesTo("cmd/ysmart") {
		t.Error("unscoped analyzers must cover every package")
	}
	if !TagDispatch.appliesTo("internal/cmf") || TagDispatch.appliesTo("internal/exec") {
		t.Error("tagdispatch scope must be exactly internal/cmf")
	}
	if !ShareCheck.appliesTo("internal/mapreduce") || !ShareCheck.appliesTo("internal/difftest") {
		t.Error("sharecheck must cover the packages that spawn parallel tasks")
	}
	if ShareCheck.appliesTo("internal/translator") {
		t.Error("sharecheck must not cover the sequential translator")
	}
	if !ConcReduce.appliesTo("cmd/ysmart") {
		t.Error("concreduce is unscoped; marker types may live anywhere")
	}
	if !LockOrder.appliesTo("internal/translator") {
		t.Error("lockorder is unscoped; the lock graph is a whole-module property")
	}
	if !GoLeak.appliesTo("internal/server") || !GoLeak.appliesTo("cmd/ysmart-loadgen") {
		t.Error("goleak must cover the goroutine-dense serving and load packages")
	}
	if GoLeak.appliesTo("internal/translator") {
		t.Error("goleak must not cover the sequential translator")
	}
	if !LockHeld.appliesTo("internal/server") || !LockHeld.appliesTo("internal/reuse") || !LockHeld.appliesTo("internal/obs") {
		t.Error("lockheld must cover the serving stack")
	}
	if LockHeld.appliesTo("internal/mapreduce") {
		t.Error("lockheld must not cover the engine's own barrier internals")
	}
}

// TestStaleIgnoreAudit: the driver reports directives that silence
// nothing, skips directives naming checks that did not run, and judges
// wildcards only against the full suite.
func TestStaleIgnoreAudit(t *testing.T) {
	dir := filepath.Join("testdata", "src", "staleignore")

	diags, err := Vet(dir, []string{"."}, Analyzers)
	if err != nil {
		t.Fatalf("Vet(staleignore): %v", err)
	}
	var stale []string
	for _, d := range diags {
		if d.Check != StaleIgnoreCheck {
			t.Errorf("unexpected non-audit diagnostic: %s", d)
			continue
		}
		stale = append(stale, d.Message)
	}
	if len(stale) != 2 {
		t.Fatalf("full suite: want 2 stale directives (the dead determinism one and the wildcard), got %d: %v", len(stale), stale)
	}
	if !strings.Contains(stale[0], "lint:ignore determinism") || !strings.Contains(stale[1], "lint:ignore *") {
		t.Errorf("wrong directives reported: %v", stale)
	}

	// With only one analyzer selected the wildcard is unjudgeable, but
	// the dead determinism directive still shows.
	diags, err = Vet(dir, []string{"."}, []*Analyzer{Determinism})
	if err != nil {
		t.Fatalf("Vet(staleignore, determinism): %v", err)
	}
	if len(diags) != 1 || diags[0].Check != StaleIgnoreCheck || !strings.Contains(diags[0].Message, "lint:ignore determinism") {
		t.Fatalf("subset run: want exactly the dead determinism directive, got %v", diags)
	}
}

// BenchmarkVetModule guards the CI gate's latency: one full-module vet
// — load, type-check, call graph, every analyzer (the lock-order,
// goleak, and lockheld passes included via Analyzers) — must stay
// within a few seconds on one core. CI runs it with -benchtime=1x under
// the job's -timeout budget, so a pathological slowdown fails the gate.
func BenchmarkVetModule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		diags, err := Vet(filepath.Join("..", ".."), []string{"./..."}, Analyzers)
		if err != nil {
			b.Fatalf("Vet(./...): %v", err)
		}
		if len(diags) != 0 {
			b.Fatalf("tree not vet-clean: %s", diags[0])
		}
	}
}

// BenchmarkVetLockSuite isolates the marginal cost of the concurrency
// analyzers (lock graph, entry propagation, lifecycle facts) so a
// regression in the new passes is visible apart from load/type-check
// time.
func BenchmarkVetLockSuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		diags, err := Vet(filepath.Join("..", ".."), []string{"./..."}, []*Analyzer{LockOrder, GoLeak, LockHeld})
		if err != nil {
			b.Fatalf("Vet(./...): %v", err)
		}
		if len(diags) != 0 {
			b.Fatalf("tree not clean under the lock suite: %s", diags[0])
		}
	}
}

// TestVetCleanTree: the suite's reason to exist — ysmart-vet ./... on
// the real tree reports nothing. Every true positive it found was
// fixed, and every deliberate exception is annotated.
func TestVetCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped with -short")
	}
	diags, err := Vet(filepath.Join("..", ".."), []string{"./..."}, Analyzers)
	if err != nil {
		t.Fatalf("Vet(./...): %v", err)
	}
	for _, d := range diags {
		t.Errorf("tree not vet-clean: %s", d)
	}
}
