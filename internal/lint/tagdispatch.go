package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// TagDispatch machine-checks the CMF merge contract (YSmart §VI.B): a
// merged job may only write operators its reducer evaluates, a shared
// output file needs one distinct tag per merged query, and anything
// meant to run in the common reducer must implement the full operator
// triple — Name (the tag/identity callback), Sources (which values the
// dispatcher routes to it), Eval (the per-key-group computation; the
// paper's init/next/final contract collapsed into one call). The
// analyzer proves what it can from composite literals; jobs assembled
// dynamically are left to the runtime validator.
var TagDispatch = &Analyzer{
	Name:     "tagdispatch",
	Doc:      "flag CommonJob literals whose output tags cannot match the reducer's dispatch set, and partial cmf.Op implementations",
	Packages: []string{"internal/cmf"},
	Run:      runTagDispatch,
}

// opTriple is the method set a common-reducer operator must implement.
var opTriple = []string{"Name", "Sources", "Eval"}

func runTagDispatch(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			if lit, ok := n.(*ast.CompositeLit); ok {
				checkCommonJobLit(pass, lit)
			}
			return true
		})
	}
	checkOpTriples(pass)
}

// isCMFType reports whether t is the named type name from internal/cmf
// (matched whether the analyzed package imports cmf or is cmf itself).
func isCMFType(t types.Type, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/cmf")
}

// checkCommonJobLit proves tag/dispatch facts about a cmf.CommonJob
// composite literal. Only facts established entirely by literals are
// reported: a single non-literal op name or output spec makes the
// corresponding sets unprovable and the literal is skipped.
func checkCommonJobLit(pass *Pass, lit *ast.CompositeLit) {
	t := pass.Pkg.Info.Types[lit].Type
	if t == nil || !isCMFType(t, "CommonJob") {
		return
	}
	var opsExpr, outsExpr *ast.CompositeLit
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if cl, ok := kv.Value.(*ast.CompositeLit); ok {
			switch key.Name {
			case "Ops":
				opsExpr = cl
			case "Outputs":
				outsExpr = cl
			}
		}
	}
	if outsExpr == nil {
		return
	}
	opNames, opsProvable := literalOpNames(opsExpr)

	type out struct {
		op, tag string
		pos     ast.Expr
	}
	var outs []out
	for _, elt := range outsExpr.Elts {
		cl, ok := elt.(*ast.CompositeLit)
		if !ok {
			return // dynamically built output: nothing provable
		}
		o := out{pos: elt}
		for _, f := range cl.Elts {
			kv, ok := f.(*ast.KeyValueExpr)
			if !ok {
				return
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok {
				return
			}
			s, ok := stringLit(kv.Value)
			if !ok {
				return
			}
			switch key.Name {
			case "Op":
				o.op = s
			case "Tag":
				o.tag = s
			}
		}
		outs = append(outs, o)
	}

	tags := make(map[string]bool)
	for _, o := range outs {
		if opsProvable && o.op != "" && !opNames[o.op] {
			known := make([]string, 0, len(opNames))
			for n := range opNames {
				known = append(known, n)
			}
			sort.Strings(known)
			pass.Reportf(o.pos.Pos(),
				"output op %q is not evaluated by this job's reducer (ops: %s); its tag would never be emitted",
				o.op, strings.Join(known, ", "))
		}
		if len(outs) > 1 && o.tag == "" {
			pass.Reportf(o.pos.Pos(),
				"multi-output common job writes op %q untagged; downstream decoders cannot dispatch the shared file", o.op)
		}
		if o.tag != "" && tags[o.tag] {
			pass.Reportf(o.pos.Pos(),
				"duplicate output tag %q; two merged queries would collide in the shared output file", o.tag)
		}
		tags[o.tag] = true
	}
}

// literalOpNames extracts the OpName of every element of an Ops slice
// literal. provable is false when any element's name is not a string
// literal (the set cannot be compared statically).
func literalOpNames(opsExpr *ast.CompositeLit) (names map[string]bool, provable bool) {
	if opsExpr == nil {
		return nil, false
	}
	names = make(map[string]bool)
	for _, elt := range opsExpr.Elts {
		if u, ok := elt.(*ast.UnaryExpr); ok {
			elt = u.X
		}
		cl, ok := elt.(*ast.CompositeLit)
		if !ok {
			return nil, false
		}
		found := false
		for _, f := range cl.Elts {
			kv, ok := f.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "OpName" {
				s, ok := stringLit(kv.Value)
				if !ok {
					return nil, false
				}
				names[s] = true
				found = true
			}
		}
		if !found {
			return nil, false
		}
	}
	return names, true
}

// stringLit unwraps a string literal expression.
func stringLit(e ast.Expr) (string, bool) {
	bl, ok := e.(*ast.BasicLit)
	if !ok || bl.Kind.String() != "STRING" {
		return "", false
	}
	s, err := strconv.Unquote(bl.Value)
	if err != nil {
		return "", false
	}
	return s, true
}

// checkOpTriples flags named struct types that implement two of the
// three cmf.Op methods: almost certainly an operator that silently
// fails the interface assertion instead of joining the dispatch set.
func checkOpTriples(pass *Pass) {
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		var have, missing []string
		for _, m := range opTriple {
			if ms.Lookup(pass.Pkg.Types, m) != nil {
				have = append(have, m)
			} else {
				missing = append(missing, m)
			}
		}
		if len(have) == 2 {
			pass.Reportf(tn.Pos(),
				"type %s has %s but no %s; it will not satisfy cmf.Op and the common reducer would never dispatch to it",
				name, fmt.Sprintf("%s and %s", have[0], have[1]), missing[0])
		}
	}
}
