package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package of the program.
type Package struct {
	// Path is the import path ("ysmart/internal/cmf", or a synthetic
	// path for testdata corpora loaded by directory).
	Path string
	// Rel is the module-relative directory ("internal/cmf").
	Rel string
	// Dir is the absolute directory.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded module: every requested package plus everything
// they import from the module, sharing one FileSet.
type Program struct {
	Fset    *token.FileSet
	ModPath string
	ModRoot string
	// Pkgs maps import path to package for every module package loaded.
	Pkgs map[string]*Package

	loading map[string]bool
	std     types.ImporterFrom

	deprecatedOnce bool
	deprecated     map[types.Object]string

	// Interprocedural caches, built lazily and shared by analyzers.
	callgraph  *CallGraph
	effects    map[*types.Func]*fnEffects
	nondetOnce bool
	nondet     map[*types.Func]*Fact

	// Lock- and lifecycle-analysis caches (lockset.go and friends).
	lockWraps      map[*types.Func]map[int]int
	lockFacts      map[*types.Func]*lockFacts
	entryHeld      map[*types.Func]map[string]heldVia
	lockCyclesOnce bool
	lockCycles     []lockCycle
	leakOnce       bool
	leak           map[*types.Func]*Fact
	blockOnce      bool
	block          map[*types.Func]*Fact
}

// Target is one package selected by the command-line patterns. Explicit
// targets (named directories rather than ./... expansion) bypass
// analyzer package scopes.
type Target struct {
	Pkg      *Package
	Explicit bool
}

// Load parses and type-checks the packages matched by patterns under
// the module containing dir. Supported patterns: "./..." (every package
// in the module, testdata and hidden directories excluded) and explicit
// directory paths. Test files are never loaded; the suite vets the
// shipped code.
func Load(dir string, patterns []string) (*Program, []Target, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, nil, err
	}
	prog := &Program{
		Fset:    token.NewFileSet(),
		ModPath: modPath,
		ModRoot: root,
		Pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	prog.std = importer.ForCompiler(prog.Fset, "source", nil).(types.ImporterFrom)

	var targets []Target
	seen := make(map[string]bool)
	addTarget := func(p *Package, explicit bool) {
		if !seen[p.Path] {
			seen[p.Path] = true
			targets = append(targets, Target{Pkg: p, Explicit: explicit})
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			dirs, err := moduleDirs(root)
			if err != nil {
				return nil, nil, err
			}
			for _, d := range dirs {
				p, err := prog.loadDir(d)
				if err != nil {
					return nil, nil, err
				}
				addTarget(p, false)
			}
		default:
			abs := pat
			if !filepath.IsAbs(abs) {
				abs = filepath.Join(dir, pat)
			}
			abs = filepath.Clean(abs)
			p, err := prog.loadDir(abs)
			if err != nil {
				return nil, nil, err
			}
			addTarget(p, true)
		}
	}
	sort.Slice(targets, func(i, k int) bool { return targets[i].Pkg.Path < targets[k].Pkg.Path })
	return prog, targets, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module"); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", abs)
		}
	}
}

// moduleDirs returns every directory under root holding at least one
// non-test Go file, skipping testdata, vendor, and hidden or
// underscore-prefixed directories (the go tool's own walk rules).
func moduleDirs(root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".go") && !strings.HasSuffix(path, "_test.go") {
			dir := filepath.Dir(path)
			if len(out) == 0 || out[len(out)-1] != dir {
				out = append(out, dir)
			}
		}
		return nil
	})
	sort.Strings(out)
	return out, err
}

// importPathOf maps a directory inside the module to its import path.
func (prog *Program) importPathOf(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(prog.ModRoot, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, prog.ModRoot)
	}
	if rel == "." {
		return prog.ModPath, nil
	}
	return prog.ModPath + "/" + filepath.ToSlash(rel), nil
}

// loadDir loads (or returns the cached) package in the directory.
func (prog *Program) loadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := prog.importPathOf(abs)
	if err != nil {
		return nil, err
	}
	return prog.load(path, abs)
}

// load parses and type-checks one module package, resolving its module
// imports recursively and its stdlib imports through the source
// importer.
func (prog *Program) load(path, dir string) (*Package, error) {
	if p, ok := prog.Pkgs[path]; ok {
		return p, nil
	}
	if prog.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	prog.loading[path] = true
	defer delete(prog.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*progImporter)(prog),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, prog.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	rel := strings.TrimPrefix(path, prog.ModPath+"/")
	if path == prog.ModPath {
		rel = "."
	}
	p := &Package{Path: path, Rel: rel, Dir: dir, Files: files, Types: tpkg, Info: info}
	prog.Pkgs[path] = p
	return p, nil
}

// progImporter adapts Program to types.Importer: module-internal import
// paths load recursively from source, everything else goes to the
// stdlib source importer.
type progImporter Program

// Import implements types.Importer.
func (pi *progImporter) Import(path string) (*types.Package, error) {
	return pi.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (pi *progImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	prog := (*Program)(pi)
	if path == prog.ModPath || strings.HasPrefix(path, prog.ModPath+"/") {
		rel := strings.TrimPrefix(path, prog.ModPath)
		rel = strings.TrimPrefix(rel, "/")
		p, err := prog.load(path, filepath.Join(prog.ModRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return prog.std.ImportFrom(path, dir, mode)
}
