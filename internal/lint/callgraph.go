package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// The call graph is the interprocedural backbone of the suite: a static
// over-approximation of "who can run whom" inside the module, built once
// per loaded Program and shared by every analyzer. Three edge kinds:
//
//   - EdgeStatic: a direct call to a package function or a method on a
//     concrete receiver.
//   - EdgeDynamic: an interface method call, resolved by method-set
//     search to every in-module concrete implementation. Resolution is
//     deliberately bounded to the module: interfaces declared outside it
//     (error, io.Writer, ...) produce no edges, and an in-module
//     interface with zero in-module implementations is recorded as an
//     unresolved call — analyzers treat those conservatively
//     (assume-impure for determinism, assume-shared for sharecheck).
//   - EdgeRef: an in-module function or method referenced as a value
//     (passed as an argument, stored, returned, or taken as a method
//     value). Whoever receives the value may call it, so its effects are
//     attributed to the function that let the reference escape; calls
//     through plain func-typed values therefore need no edges of their
//     own — the binding site already carries one.
//
// Function literals are inlined into the function that declares them:
// the closure passed to forEachTask is analyzed as part of its enclosing
// method, which is exactly the scope its captured variables live in.
//
// Implementation-candidate search skips package main: programs at the
// module edge register their callbacks through the public API (covered
// by EdgeRef at their own call sites) and must not inject edges into the
// library's interface dispatch.

// EdgeKind classifies a call-graph edge.
type EdgeKind int

// The edge kinds, ordered static < dynamic < ref for stable sorting.
const (
	EdgeStatic EdgeKind = iota
	EdgeDynamic
	EdgeRef
)

// String renders the kind for diagnostics and tests.
func (k EdgeKind) String() string {
	switch k {
	case EdgeStatic:
		return "static"
	case EdgeDynamic:
		return "dynamic"
	case EdgeRef:
		return "ref"
	}
	return "unknown"
}

// recvClass is a coarse ownership class for a method call's receiver,
// the RacerD-style signal that lets effect propagation skip writes to
// objects the calling context provably created itself.
type recvClass int

const (
	// recvShared: the receiver is rooted in state a concurrent peer
	// could also reach (package variable, captured value, unknown).
	recvShared recvClass = iota
	// recvParam: the receiver is the caller's own receiver or parameter
	// — ownership is whatever the caller's caller says it is.
	recvParam
	// recvLocal: the receiver is rooted in a variable the caller
	// created locally; the callee's receiver writes are private.
	recvLocal
)

// CallEdge is one caller→callee edge at a concrete source position.
type CallEdge struct {
	Caller *types.Func
	Callee *types.Func
	Pos    token.Pos
	Kind   EdgeKind
	// Recv classifies the receiver for method calls; plain calls and
	// references inherit the caller's ownership context (recvParam).
	Recv recvClass
}

// UnresolvedCall records a dynamic call the builder could not bound to
// any in-module implementation. Analyzers degrade to a conservative
// default at these sites.
type UnresolvedCall struct {
	Pos  token.Pos
	Desc string
}

// CallNode is one function's outgoing view of the graph.
type CallNode struct {
	Fn  *types.Func
	Out []CallEdge
	// Unresolved lists the node's dynamic calls with no bound callee.
	Unresolved []UnresolvedCall
}

// declOf ties a function object back to its syntax and package, for
// analyzers that re-walk bodies with type information.
type declOf struct {
	Pkg  *Package
	File *ast.File
	Decl *ast.FuncDecl
}

// CallGraph is the module-wide graph plus the decl index.
type CallGraph struct {
	prog  *Program
	Nodes map[*types.Func]*CallNode
	// Decls maps every graphed function to its declaration.
	Decls map[*types.Func]declOf
}

// CallGraph builds (or returns the cached) call graph over every package
// the program has loaded.
func (prog *Program) CallGraph() *CallGraph {
	if prog.callgraph != nil {
		return prog.callgraph
	}
	g := &CallGraph{
		prog:  prog,
		Nodes: make(map[*types.Func]*CallNode),
		Decls: make(map[*types.Func]declOf),
	}
	pkgs := prog.sortedPkgs()
	impls := implCandidates(pkgs)
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.Decls[fn] = declOf{Pkg: pkg, File: file, Decl: fd}
				g.collect(pkg, fn, fd, impls)
			}
		}
	}
	for _, n := range g.Nodes {
		sort.Slice(n.Out, func(i, k int) bool {
			a, b := n.Out[i], n.Out[k]
			if a.Pos != b.Pos {
				return a.Pos < b.Pos
			}
			if a.Kind != b.Kind {
				return a.Kind < b.Kind
			}
			return a.Callee.FullName() < b.Callee.FullName()
		})
	}
	prog.callgraph = g
	return g
}

// sortedPkgs returns the loaded packages in import-path order, the
// deterministic iteration every graph pass relies on.
func (prog *Program) sortedPkgs() []*Package {
	paths := make([]string, 0, len(prog.Pkgs))
	for p := range prog.Pkgs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, len(paths))
	for i, p := range paths {
		pkgs[i] = prog.Pkgs[p]
	}
	return pkgs
}

// inModule reports whether the function is declared in a module package.
func (prog *Program) inModule(fn *types.Func) bool {
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == prog.ModPath || strings.HasPrefix(path, prog.ModPath+"/")
}

// relOf maps a types package to its module-relative path ("" when the
// package is outside the module).
func (prog *Program) relOf(pkg *types.Package) string {
	if pkg == nil {
		return ""
	}
	path := pkg.Path()
	if path == prog.ModPath {
		return "."
	}
	if rest, ok := strings.CutPrefix(path, prog.ModPath+"/"); ok {
		return rest
	}
	return ""
}

// implCandidates gathers every named non-interface type declared in a
// non-main module package — the universe the dynamic-dispatch search
// resolves against.
func implCandidates(pkgs []*Package) []*types.Named {
	var out []*types.Named
	for _, pkg := range pkgs {
		if pkg.Types.Name() == "main" {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			out = append(out, named)
		}
	}
	return out
}

// node returns (creating if needed) the graph node for fn.
func (g *CallGraph) node(fn *types.Func) *CallNode {
	n, ok := g.Nodes[fn]
	if !ok {
		n = &CallNode{Fn: fn}
		g.Nodes[fn] = n
	}
	return n
}

// addEdge appends an edge when the callee is an in-module function.
func (g *CallGraph) addEdge(from *types.Func, callee *types.Func, pos token.Pos, kind EdgeKind, recv recvClass) {
	if !g.prog.inModule(callee) {
		return
	}
	n := g.node(from)
	n.Out = append(n.Out, CallEdge{Caller: from, Callee: callee, Pos: pos, Kind: kind, Recv: recv})
}

// collect walks one function body (closures included) and records its
// edges and unresolved calls.
func (g *CallGraph) collect(pkg *Package, fn *types.Func, fd *ast.FuncDecl, impls []*types.Named) {
	g.node(fn)
	body := fd.Body

	// Range key/value variables alias elements of the ranged expression;
	// calls on them own whatever the ranged container owns.
	rangeSrc := make(map[*types.Var]ast.Expr)
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			for _, k := range []ast.Expr{r.Key, r.Value} {
				id, ok := k.(*ast.Ident)
				if !ok {
					continue
				}
				if v, ok := pkg.Info.Defs[id].(*types.Var); ok {
					rangeSrc[v] = r.X
				}
			}
		}
		return true
	})

	// First pass: remember which expressions are the operator of a call
	// and which idents are selector fields, so the reference pass below
	// does not double-count them.
	callFun := make(map[ast.Expr]bool)
	selIdent := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			callFun[ast.Unparen(n.Fun)] = true
		case *ast.SelectorExpr:
			selIdent[n.Sel] = true
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			g.classifyCall(pkg, fn, fd, rangeSrc, n, impls)
		case *ast.SelectorExpr:
			if callFun[n] {
				return true
			}
			// Method value / qualified function reference.
			if callee, ok := pkg.Info.Uses[n.Sel].(*types.Func); ok {
				g.addEdge(fn, callee, n.Pos(), EdgeRef, recvParam)
			}
		case *ast.Ident:
			if callFun[n] || selIdent[n] {
				return true
			}
			if _, isDef := pkg.Info.Defs[n]; isDef {
				return true
			}
			if callee, ok := pkg.Info.Uses[n].(*types.Func); ok {
				g.addEdge(fn, callee, n.Pos(), EdgeRef, recvParam)
			}
		}
		return true
	})
}

// classifyCall resolves one call expression into edges.
func (g *CallGraph) classifyCall(pkg *Package, fn *types.Func, fd *ast.FuncDecl, rangeSrc map[*types.Var]ast.Expr, call *ast.CallExpr, impls []*types.Named) {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if callee, ok := pkg.Info.Uses[f].(*types.Func); ok {
			g.addEdge(fn, callee, call.Pos(), EdgeStatic, recvParam)
		}
		// Vars (func values), builtins and conversions carry no edge:
		// func-value bindings are covered by EdgeRef at the bind site.
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[f]; ok {
			if sel.Kind() != types.MethodVal {
				return // func-typed field call; EdgeRef covers the store
			}
			callee, ok := sel.Obj().(*types.Func)
			if !ok {
				return
			}
			rc := recvClassOf(pkg, fd, rangeSrc, f.X)
			if iface, _ := sel.Recv().Underlying().(*types.Interface); iface != nil {
				g.dispatch(fn, call, sel.Recv(), callee, impls, rc)
				return
			}
			g.addEdge(fn, callee, call.Pos(), EdgeStatic, rc)
			return
		}
		// Qualified call: pkg.Func (or a conversion, which has no Func).
		if callee, ok := pkg.Info.Uses[f.Sel].(*types.Func); ok {
			g.addEdge(fn, callee, call.Pos(), EdgeStatic, recvParam)
		}
	}
	// Any other operator shape (index expression, call result, func
	// literal) is a func value whose binding sites carry EdgeRef.
}

// recvClassOf classifies the ownership of a method-call receiver
// expression relative to the enclosing declaration: rooted in a local the
// function created (recvLocal), in its own receiver/parameters
// (recvParam), or in anything a concurrent peer could reach (recvShared —
// package variables, call results, unknown shapes). Range variables
// resolve through to the ranged expression's root.
func recvClassOf(pkg *Package, fd *ast.FuncDecl, rangeSrc map[*types.Var]ast.Expr, e ast.Expr) recvClass {
	for hop := 0; hop < 8; hop++ {
		root := rootIdent(e)
		if root == nil {
			return recvShared
		}
		obj, _ := pkg.Info.Uses[root].(*types.Var)
		if obj == nil {
			return recvShared // package-qualified value, func result, ...
		}
		if src, ok := rangeSrc[obj]; ok && src != e {
			e = src
			continue
		}
		switch {
		case isPkgLevel(obj):
			return recvShared
		case isSigVar(pkg, fd, obj):
			return recvParam
		case obj.Pos() >= fd.Pos() && obj.Pos() < fd.End():
			return recvLocal
		}
		return recvShared // captured from an enclosing scope
	}
	return recvShared
}

// isPkgLevel reports whether the variable is declared at package scope.
func isPkgLevel(obj *types.Var) bool {
	return obj.Parent() != nil && obj.Parent().Parent() == types.Universe
}

// isSigVar reports whether obj is the declared function's receiver or one
// of its parameters.
func isSigVar(pkg *Package, fd *ast.FuncDecl, obj *types.Var) bool {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return false
	}
	if sig.Recv() != nil && sig.Recv() == obj {
		return true
	}
	return isParamOf(sig, obj)
}

// dispatch resolves an interface method call against the in-module
// implementation candidates. Interfaces declared outside the module are
// skipped entirely — their behavior is outside the invariants this suite
// checks — while an in-module interface with no in-module implementation
// becomes an unresolved call, the conservative default.
func (g *CallGraph) dispatch(fn *types.Func, call *ast.CallExpr, recv types.Type, method *types.Func, impls []*types.Named, rc recvClass) {
	ifaceName := "interface"
	if named, ok := recv.(*types.Named); ok {
		if named.Obj().Pkg() != nil && g.prog.relOf(named.Obj().Pkg()) == "" {
			return // declared outside the module
		}
		ifaceName = named.Obj().Name()
	}
	iface := recv.Underlying().(*types.Interface)
	found := 0
	for _, cand := range impls {
		ptr := types.NewPointer(cand)
		if !types.Implements(ptr, iface) && !types.Implements(cand, iface) {
			continue
		}
		ms := types.NewMethodSet(ptr)
		sel := ms.Lookup(method.Pkg(), method.Name())
		if sel == nil {
			continue
		}
		if callee, ok := sel.Obj().(*types.Func); ok {
			g.addEdge(fn, callee, call.Pos(), EdgeDynamic, rc)
			found++
		}
	}
	if found == 0 {
		n := g.node(fn)
		n.Unresolved = append(n.Unresolved, UnresolvedCall{
			Pos:  call.Pos(),
			Desc: fmt.Sprintf("no in-module implementation of %s.%s", ifaceName, method.Name()),
		})
	}
}

// shortFuncName renders a function as pkg.Name or pkg.Type.Method, the
// form call-path diagnostics use.
func shortFuncName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return pkg + named.Obj().Name() + "." + fn.Name()
		}
	}
	return pkg + fn.Name()
}

// pathString renders a witness call chain for a diagnostic.
func pathString(path []*types.Func) string {
	parts := make([]string, len(path))
	for i, fn := range path {
		parts[i] = shortFuncName(fn)
	}
	return strings.Join(parts, " -> ")
}
