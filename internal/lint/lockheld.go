package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockHeld flags blocking operations reachable while a mutex is held —
// the serving-stack latency and deadlock amplifier: one slow client in
// a critical section stalls every other session on the same lock.
// Blocking operations are channel sends and receives outside a select
// with a default case, selects without a default, WaitGroup/Cond Wait,
// time.Sleep, and network I/O (net Accept/Read/Write/Dial and buffered
// I/O over them); forEachTask is caught transitively through the
// WaitGroup barrier inside it. Mutex Lock/Unlock calls are deliberately
// excluded (nested acquisition order is lockorder's domain), as is
// conn.Close, the sanctioned way to kick a session out from under the
// server lock. The check is interprocedural over static and dynamic
// call edges; the lexical hold tracking is shared with sharecheck
// (facts.go) and the lock-identity layer (lockset.go).
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "flag channel operations, Wait, sleeps, and network I/O reachable while a mutex is held",
	Packages: []string{
		"internal/server",
		"internal/reuse",
		"internal/obs",
	},
	Run: runLockHeld,
}

func runLockHeld(pass *Pass) {
	g := pass.Prog.CallGraph()
	wraps := g.lockWrappers()
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			checkLockHeld(pass, g, wraps, fn, fd)
		}
	}
}

// checkLockHeld walks one function with the identified hold set and
// reports blocking operations (direct or through calls) at held points.
func checkLockHeld(pass *Pass, g *CallGraph, wraps map[*types.Func]map[int]int, fn *types.Func, fd *ast.FuncDecl) {
	pkg := pass.Pkg
	comm := commSpans(fd.Body)
	node := g.Nodes[fn]
	edgesAt := make(map[token.Pos][]CallEdge)
	if node != nil {
		for _, e := range node.Out {
			edgesAt[e.Pos] = append(edgesAt[e.Pos], e)
		}
	}
	reported := make(map[token.Pos]bool)
	report := func(pos token.Pos, format string, args ...any) {
		if !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos, format, args...)
		}
	}
	visitHeld(pkg, wraps, fd.Body.List, &heldLocks{}, func(n ast.Node, held *heldLocks) {
		if !held.any() {
			return
		}
		if desc := blockingNode(pkg, comm, n); desc != "" {
			report(n.Pos(), "%s while holding %s; shrink the critical section so the lock never covers a blocking operation",
				desc, holdDesc(held))
			return
		}
		pos, ok := nodePos(n)
		if !ok {
			return
		}
		for _, e := range edgesAt[pos] {
			if e.Kind == EdgeRef {
				continue
			}
			path, fact := g.reachBlocking(e.Callee)
			if fact == nil {
				continue
			}
			report(pos, "call to %s blocks while holding %s: %s at %s (path %s); move the call out of the critical section",
				shortFuncName(e.Callee), holdDesc(held), fact.Desc, g.posStr(fact.Pos), pathString(path))
			return
		}
	})
}

// nodePos extracts the edge-lookup position for call and reference
// nodes, mirroring how effectsOf consumes edges.
func nodePos(n ast.Node) (token.Pos, bool) {
	switch n := n.(type) {
	case *ast.CallExpr:
		return n.Pos(), true
	case *ast.SelectorExpr:
		return n.Pos(), true
	case *ast.Ident:
		return n.Pos(), true
	}
	return token.NoPos, false
}

// holdDesc names the held lock for a diagnostic: the innermost
// identified lock when there is one, generic otherwise.
func holdDesc(held *heldLocks) string {
	for i := len(held.locks) - 1; i >= 0; i-- {
		if id := held.locks[i].Key.ID; id != "" {
			return id
		}
	}
	return "a mutex"
}

// reachBlocking searches breadth-first from start for a function whose
// body performs a blocking operation, following static and dynamic
// edges only — a function value bound while the lock is held typically
// runs after the unlock, so ref edges do not count.
func (g *CallGraph) reachBlocking(start *types.Func) ([]*types.Func, *Fact) {
	type item struct {
		fn   *types.Func
		prev *item
	}
	expand := func(it *item) []*types.Func {
		var path []*types.Func
		for ; it != nil; it = it.prev {
			path = append([]*types.Func{it.fn}, path...)
		}
		return path
	}
	seen := map[*types.Func]bool{start: true}
	queue := []*item{{fn: start}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if f := g.blockFactOf(it.fn); f != nil {
			return expand(it), f
		}
		node := g.Nodes[it.fn]
		if node == nil {
			continue
		}
		for _, e := range node.Out {
			if e.Kind == EdgeRef || seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			queue = append(queue, &item{fn: e.Callee, prev: it})
		}
	}
	return nil, nil
}

// blockFactOf computes (and caches) the first blocking operation in the
// function's own body, nested literals excluded.
func (g *CallGraph) blockFactOf(fn *types.Func) *Fact {
	if g.prog.block == nil {
		g.prog.block = make(map[*types.Func]*Fact)
	}
	if f, ok := g.prog.block[fn]; ok {
		return f
	}
	var fact *Fact
	if d, ok := g.Decls[fn]; ok {
		comm := commSpans(d.Decl.Body)
		ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
			if fact != nil {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if n == nil {
				return false
			}
			if desc := blockingNode(d.Pkg, comm, n); desc != "" {
				fact = &Fact{Pos: n.Pos(), Desc: desc}
				return false
			}
			return true
		})
	}
	g.prog.block[fn] = fact
	return fact
}

// span is a half-open position range.
type span struct{ from, to token.Pos }

// commSpans records the comm-statement spans of every select in the
// body: the send/receive in a `case` clause is the select's choice, not
// an independent blocking point (and a select with a default makes the
// whole choice non-blocking — the select statement itself carries the
// fact when it has no default).
func commSpans(body *ast.BlockStmt) []span {
	var out []span
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
				out = append(out, span{from: cc.Comm.Pos(), to: cc.Comm.End()})
			}
		}
		return true
	})
	return out
}

// inSpans reports whether pos falls inside any recorded span.
func inSpans(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if pos >= s.from && pos < s.to {
			return true
		}
	}
	return false
}

// blockingNode classifies one AST node as a blocking operation,
// returning a description ("" when not blocking).
func blockingNode(pkg *Package, comm []span, n ast.Node) string {
	switch n := n.(type) {
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				return "" // has a default: never blocks
			}
		}
		return "a select with no default case"
	case *ast.SendStmt:
		if inSpans(comm, n.Pos()) {
			return ""
		}
		return "a channel send"
	case *ast.UnaryExpr:
		if n.Op != token.ARROW || inSpans(comm, n.Pos()) {
			return ""
		}
		return "a channel receive"
	case *ast.CallExpr:
		return blockingCall(pkg, n)
	}
	return ""
}

// blockingCall classifies a call expression as a blocking operation.
func blockingCall(pkg *Package, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// Method calls: resolve through selections (concrete and interface
	// receivers both land here).
	var callee *types.Func
	if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
		callee, _ = s.Obj().(*types.Func)
	} else if f, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok {
		callee = f
	}
	if callee == nil || callee.Pkg() == nil {
		return ""
	}
	path, name := callee.Pkg().Path(), callee.Name()
	switch path {
	case "sync":
		if name == "Wait" {
			return "a sync." + recvTypeName(callee) + ".Wait"
		}
	case "time":
		if name == "Sleep" {
			return "a time.Sleep"
		}
	case "net":
		switch name {
		case "Accept", "Read", "Write", "ReadFrom", "WriteTo",
			"Dial", "DialTimeout", "DialTCP", "DialUDP":
			return "network I/O (net " + name + ")"
		}
	case "bufio":
		switch name {
		case "Read", "ReadByte", "ReadBytes", "ReadString", "ReadRune",
			"ReadLine", "ReadSlice", "Write", "WriteByte", "WriteString",
			"WriteRune", "Flush", "Peek":
			return "buffered I/O (bufio " + name + ")"
		}
	}
	return ""
}

// recvTypeName names a method's receiver type (WaitGroup, Cond, ...).
func recvTypeName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return "?"
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return "?"
}
