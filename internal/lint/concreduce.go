package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ConcReduce vets every type carrying the ConcurrentReduce marker — the
// promise that its Reduce method is safe to run once per key group
// concurrently under the engine's shared dispatch. The marker obliges
// the type to:
//
//   - actually have a Reduce method;
//   - mutate receiver state (and package state, and state behind pointer
//     parameters) only while a mutex is held or through sync/atomic —
//     checked transitively through helper calls via the call graph;
//   - never be copied by value while it carries a sync.Mutex: no value
//     receivers on lock-bearing structs, no *recv copies inside methods.
//
// Dynamic calls the graph cannot bound to an in-module implementation
// are conservatively assumed to write shared state.
var ConcReduce = &Analyzer{
	Name: "concreduce",
	Doc:  "verify ConcurrentReduce-marked reducers fold shared state only under a held mutex or atomics",
	Run:  runConcReduce,
}

func runConcReduce(pass *Pass) {
	g := pass.Prog.CallGraph()
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue // the marker interface itself
		}
		ms := types.NewMethodSet(types.NewPointer(named))
		if ms.Lookup(pass.Pkg.Types, "ConcurrentReduce") == nil {
			continue
		}
		checkConcurrentReducer(pass, g, named, ms)
	}
}

// checkConcurrentReducer applies the marker's obligations to one type.
func checkConcurrentReducer(pass *Pass, g *CallGraph, named *types.Named, ms *types.MethodSet) {
	tn := named.Obj()
	sel := ms.Lookup(pass.Pkg.Types, "Reduce")
	if sel == nil {
		pass.Reportf(tn.Pos(),
			"type %s carries the ConcurrentReduce marker but has no Reduce method; the marker promises a reducer safe to run concurrently", tn.Name())
		return
	}

	if hasMutexValue(named, 0) {
		for i := 0; i < named.NumMethods(); i++ {
			m := named.Method(i)
			sig, _ := m.Type().(*types.Signature)
			if sig == nil || sig.Recv() == nil {
				continue
			}
			if !isPointer(sig.Recv().Type()) {
				pass.Reportf(m.Pos(),
					"method %s.%s has a value receiver, copying the struct and the sync.Mutex inside it; use a pointer receiver", tn.Name(), m.Name())
				continue
			}
			checkNoCopy(pass, g, tn, m)
		}
	}

	reduceFn, ok := sel.Obj().(*types.Func)
	if !ok {
		return
	}
	eff := g.effectsOf(reduceFn)
	reported := make(map[token.Pos]bool)
	for _, w := range eff.writes {
		if reported[w.pos] {
			continue
		}
		reported[w.pos] = true
		pass.Reportf(w.pos,
			"%s.Reduce writes %s with no mutex held; key groups run concurrently under the ConcurrentReduce marker — fold under the receiver's mutex or use sync/atomic", tn.Name(), w.desc)
	}
	for _, u := range eff.unresolved {
		if reported[u.Pos] {
			continue
		}
		reported[u.Pos] = true
		pass.Reportf(u.Pos,
			"%s.Reduce makes an unresolvable dynamic call (%s); assume-shared — bound it to an in-module implementation or annotate the site", tn.Name(), u.Desc)
	}
	for _, e := range eff.calls {
		if reported[e.Pos] {
			continue
		}
		path, fact := g.reachSharedWrite(e.Callee, e.Recv == recvLocal)
		if fact == nil {
			continue
		}
		reported[e.Pos] = true
		pass.Reportf(e.Pos,
			"%s.Reduce calls %s, which writes %s with no lock held (path %s); everything Reduce mutates must be guarded", tn.Name(), shortFuncName(e.Callee), fact.Desc, pathString(path))
	}
}

// checkNoCopy flags *recv copies inside a pointer-receiver method of a
// lock-bearing struct: `c := *cr` (or passing *cr by value) duplicates
// the mutex, and the copy's lock state is meaningless.
func checkNoCopy(pass *Pass, g *CallGraph, tn *types.TypeName, m *types.Func) {
	d, ok := g.Decls[m]
	if !ok {
		return
	}
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return
	}
	recv := sig.Recv()
	// (*cr).field selects through the pointer without copying; remember
	// the dereferences that are selector bases so only value copies flag.
	selBase := make(map[ast.Node]bool)
	ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
		if s, ok := n.(*ast.SelectorExpr); ok {
			selBase[ast.Unparen(s.X)] = true
		}
		return true
	})
	ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
		star, ok := n.(*ast.StarExpr)
		if !ok || selBase[star] {
			return true
		}
		id, ok := ast.Unparen(star.X).(*ast.Ident)
		if !ok || d.Pkg.Info.Uses[id] != recv {
			return true
		}
		pass.Reportf(star.Pos(),
			"%s.%s copies the lock-bearing struct through *%s; a sync.Mutex must not be copied by value", tn.Name(), m.Name(), id.Name)
		return false
	})
}

// hasMutexValue reports whether the type embeds a sync.Mutex /
// sync.RWMutex by value anywhere in its (nested) struct layout. A mutex
// behind a pointer field is fine to copy.
func hasMutexValue(t types.Type, depth int) bool {
	if depth > 4 {
		return false
	}
	if isSyncMutexValue(t) {
		return true
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if hasMutexValue(st.Field(i).Type(), depth+1) {
			return true
		}
	}
	return false
}

// isSyncMutexValue reports whether t itself — not behind a pointer — is
// sync.Mutex or sync.RWMutex.
func isSyncMutexValue(t types.Type) bool {
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	return isSyncMutex(t)
}
