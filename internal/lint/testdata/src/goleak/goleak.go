// Package goleak is the golden corpus for the goleak analyzer: every
// go statement must have a provable termination signal. Spawns whose
// bodies (directly or through calls) loop forever with no reachable
// exit fire at the spawn site; done-channel returns, bounded and range
// loops, WaitGroup-disciplined workers, and labeled breaks are refused.
package goleak

import "sync"

// spinForever can never exit: the base fact.
func spinForever() {
	for {
	}
}

// outerForever reaches the fact through a call.
func outerForever() {
	spinForever()
}

// blockForever blocks on an empty select.
func blockForever() {
	select {}
}

func spawnNamed() {
	go spinForever() // want "goroutine spawned here never provably exits: goleak.spinForever has a for .. loop with no reachable return, break, or goto"
}

func spawnChain() {
	go outerForever() // want "never provably exits: .* .path goleak.outerForever -> goleak.spinForever."
}

func spawnSelect() {
	go blockForever() // want "never provably exits: goleak.blockForever has an empty select .. that blocks forever"
}

func spawnLit() {
	go func() { // want "goroutine spawned here never provably exits: a for .. loop with no reachable return, break, or goto"
		for {
		}
	}()
}

// spawnDone is the sanctioned shape: the loop returns when the done
// channel closes. Refused.
func spawnDone(done chan struct{}, tick chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case <-tick:
			}
		}
	}()
}

// spawnBounded runs a conditioned loop. Refused.
func spawnBounded(n int) {
	go func() {
		for i := 0; i < n; i++ {
			_ = i
		}
	}()
}

// spawnRange drains a channel; the loop ends when the channel closes.
// Refused.
func spawnRange(jobs chan int) {
	go func() {
		for range jobs {
		}
	}()
}

// spawnWorker is the WaitGroup-disciplined worker: Done on exit, return
// when the job channel closes. Refused.
func spawnWorker(wg *sync.WaitGroup, jobs chan int) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			_, ok := <-jobs
			if !ok {
				return
			}
		}
	}()
}

// spawnLabeled escapes through a labeled break. Refused.
func spawnLabeled(stop chan struct{}) {
	go func() {
	loop:
		for {
			select {
			case <-stop:
				break loop
			}
		}
		_ = 0
	}()
}
