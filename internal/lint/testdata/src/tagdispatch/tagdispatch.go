// Package tagdispatch is the golden corpus for the tagdispatch
// analyzer: literal CommonJobs whose output set provably disagrees with
// the reducer's op set, missing or colliding tags, and partial cmf.Op
// implementations.
package tagdispatch

import "ysmart/internal/cmf"

func unknownOutputOp() cmf.CommonJob {
	return cmf.CommonJob{
		Name: "bad-output",
		Ops: []cmf.Op{
			&cmf.AggOp{OpName: "agg1"},
		},
		Outputs: []cmf.OutputSpec{
			{Op: "agg2"}, // want "output op \"agg2\" is not evaluated by this job's reducer"
		},
	}
}

func duplicateTags() cmf.CommonJob {
	return cmf.CommonJob{
		Name: "dup-tags",
		Ops: []cmf.Op{
			&cmf.AggOp{OpName: "a"},
			&cmf.FilterOp{OpName: "b"},
		},
		Outputs: []cmf.OutputSpec{
			{Op: "a", Tag: "T1"},
			{Op: "b", Tag: "T1"}, // want "duplicate output tag \"T1\""
		},
	}
}

func untaggedMultiOutput() cmf.CommonJob {
	return cmf.CommonJob{
		Name: "untagged",
		Ops: []cmf.Op{
			&cmf.AggOp{OpName: "a"},
			&cmf.FilterOp{OpName: "b"},
		},
		Outputs: []cmf.OutputSpec{
			{Op: "a", Tag: "T1"},
			{Op: "b"}, // want "writes op \"b\" untagged"
		},
	}
}

func wellFormed() cmf.CommonJob {
	return cmf.CommonJob{
		Name: "good",
		Ops: []cmf.Op{
			&cmf.AggOp{OpName: "a"},
			&cmf.FilterOp{OpName: "b", In: cmf.OpSource("a")},
		},
		Outputs: []cmf.OutputSpec{
			{Op: "a", Tag: "A"},
			{Op: "b", Tag: "B"},
		},
	}
}

// dynamic jobs prove nothing statically; the runtime validator owns them.
func dynamic(ops []cmf.Op) cmf.CommonJob {
	return cmf.CommonJob{
		Name:    "dynamic",
		Ops:     ops,
		Outputs: []cmf.OutputSpec{{Op: "x"}},
	}
}

// halfOp implements two of the three cmf.Op methods and would silently
// fail the interface assertion.
type halfOp struct{} // want "type halfOp has Name and Sources but no Eval"

// Name is half of a dispatchable operator.
func (halfOp) Name() string { return "half" }

// Sources is the other implemented method.
func (halfOp) Sources() []cmf.Source { return nil }

// onlyNamed has one of the three methods; it is not mistaken for an op.
type onlyNamed struct{}

// Name alone does not make an operator.
func (onlyNamed) Name() string { return "n" }
