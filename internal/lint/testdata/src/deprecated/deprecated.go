// Package deprecated is the golden corpus for the deprecated analyzer:
// uses of identifiers documented "Deprecated:" are flagged wherever the
// declaration lives; the declarations themselves are not.
package deprecated

// oldAPI is the retired entry point.
//
// Deprecated: use newAPI instead.
func oldAPI() int { return 1 }

func newAPI() int { return 2 }

type config struct {
	// Rate inflates phase times analytically.
	//
	// Deprecated: use Plan.
	Rate float64
	Plan int
}

// LegacyMode is a retired toggle.
//
// Deprecated: the mode is always on.
const LegacyMode = true

func use() int {
	c := config{}
	c.Rate = 0.5 // want "Rate is deprecated: use Plan."
	c.Plan = 1
	if LegacyMode { // want "LegacyMode is deprecated: the mode is always on."
		return oldAPI() // want "oldAPI is deprecated: use newAPI instead."
	}
	return newAPI()
}
