// Package spanpair is the golden corpus for the spanpair analyzer:
// obs.Begin spans must be Ended on every return path — by defer, by
// per-path Ends, or by handing the span off.
package spanpair

import (
	"errors"

	"ysmart/internal/obs"
)

var errFail = errors.New("fail")

func missingOnError(t obs.Tracer, fail bool) error {
	sp := obs.Begin(t, "job", "j", "driver", 0) // want "span sp begun here is not Ended on the return path"
	if fail {
		return errFail
	}
	sp.End(1)
	return nil
}

func fallsOffEnd(t obs.Tracer) {
	sp := obs.Begin(t, "job", "j", "driver", 0) // want "span sp begun here is not Ended"
	_ = sp
}

func openInSwitch(t obs.Tracer, mode int) {
	sp := obs.Begin(t, "job", "j", "driver", 0) // want "span sp begun here is not Ended"
	switch mode {
	case 0:
		sp.End(1)
	default:
	}
}

func deferred(t obs.Tracer, fail bool) error {
	sp := obs.Begin(t, "job", "j", "driver", 0)
	defer sp.End(1)
	if fail {
		return errFail
	}
	return nil
}

func deferredClosure(t obs.Tracer, fail bool) error {
	sp := obs.Begin(t, "job", "j", "driver", 0)
	defer func() { sp.End(1) }()
	if fail {
		return errFail
	}
	return nil
}

func endedOnEveryPath(t obs.Tracer, fail bool) error {
	sp := obs.Begin(t, "job", "j", "driver", 0)
	if fail {
		sp.End(0.5)
		return errFail
	}
	sp.End(1)
	return nil
}

func handedOff(t obs.Tracer) {
	sp := obs.Begin(t, "job", "j", "driver", 0)
	finishLater(sp) // ownership transferred; the callee owns the End
}

func finishLater(sp *obs.ActiveSpan) { sp.End(2) }

func returnedSpan(t obs.Tracer) *obs.ActiveSpan {
	sp := obs.Begin(t, "job", "j", "driver", 0)
	return sp // the caller owns the End
}

func closureScope(t obs.Tracer, run func(func())) {
	run(func() {
		sp := obs.Begin(t, "job", "inner", "driver", 0) // want "span sp begun here is not Ended"
		_ = sp
	})
}

// The observability plane interleaves structured log calls with open
// spans (the engine's job lifecycle logging). A guarded early return
// between Begin and End still owes the End.
func logGuardedEarlyReturn(t obs.Tracer, l *obs.Logger, fail bool) error {
	sp := obs.Begin(t, "job", "j", "driver", 0) // want "span sp begun here is not Ended on the return path"
	if l.Enabled(obs.LevelInfo) {
		l.Info("job.start", obs.F("job", "j"))
		if fail {
			return errFail
		}
	}
	sp.End(1)
	return nil
}

// The canonical instrumented call site: defer covers the span while log
// and histogram calls interleave on every path.
func logAndObserveDeferred(t obs.Tracer, l *obs.Logger, reg *obs.Registry, fail bool) error {
	sp := obs.Begin(t, "job", "j", "driver", 0)
	defer sp.End(1)
	l.Info("job.start", obs.F("job", "j"))
	reg.Observe("ysmart_job_map_seconds", 1.5)
	if fail {
		return errFail
	}
	return nil
}

// Recording into a registry mid-span does not hand the span off: the
// obligation survives unrelated instrumentation calls.
func observeDoesNotDischarge(t obs.Tracer, reg *obs.Registry) {
	sp := obs.Begin(t, "job", "j", "driver", 0) // want "span sp begun here is not Ended"
	reg.Observe("ysmart_job_map_seconds", 1.5)
	reg.Add("ysmart_engine_jobs_total", 1)
	_ = sp
}

// Logging the span's own fields (not the handle) is not an escape either;
// only passing the *ActiveSpan itself transfers ownership.
func logFieldsDoesNotDischarge(t obs.Tracer, l *obs.Logger) {
	sp := obs.Begin(t, "job", "j", "driver", 0) // want "span sp begun here is not Ended"
	l.Debug("job.span", obs.F("name", "j"))
	_ = sp
}
