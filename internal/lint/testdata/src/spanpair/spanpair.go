// Package spanpair is the golden corpus for the spanpair analyzer:
// obs.Begin spans must be Ended on every return path — by defer, by
// per-path Ends, or by handing the span off.
package spanpair

import (
	"errors"

	"ysmart/internal/obs"
)

var errFail = errors.New("fail")

func missingOnError(t obs.Tracer, fail bool) error {
	sp := obs.Begin(t, "job", "j", "driver", 0) // want "span sp begun here is not Ended on the return path"
	if fail {
		return errFail
	}
	sp.End(1)
	return nil
}

func fallsOffEnd(t obs.Tracer) {
	sp := obs.Begin(t, "job", "j", "driver", 0) // want "span sp begun here is not Ended"
	_ = sp
}

func openInSwitch(t obs.Tracer, mode int) {
	sp := obs.Begin(t, "job", "j", "driver", 0) // want "span sp begun here is not Ended"
	switch mode {
	case 0:
		sp.End(1)
	default:
	}
}

func deferred(t obs.Tracer, fail bool) error {
	sp := obs.Begin(t, "job", "j", "driver", 0)
	defer sp.End(1)
	if fail {
		return errFail
	}
	return nil
}

func deferredClosure(t obs.Tracer, fail bool) error {
	sp := obs.Begin(t, "job", "j", "driver", 0)
	defer func() { sp.End(1) }()
	if fail {
		return errFail
	}
	return nil
}

func endedOnEveryPath(t obs.Tracer, fail bool) error {
	sp := obs.Begin(t, "job", "j", "driver", 0)
	if fail {
		sp.End(0.5)
		return errFail
	}
	sp.End(1)
	return nil
}

func handedOff(t obs.Tracer) {
	sp := obs.Begin(t, "job", "j", "driver", 0)
	finishLater(sp) // ownership transferred; the callee owns the End
}

func finishLater(sp *obs.ActiveSpan) { sp.End(2) }

func returnedSpan(t obs.Tracer) *obs.ActiveSpan {
	sp := obs.Begin(t, "job", "j", "driver", 0)
	return sp // the caller owns the End
}

func closureScope(t obs.Tracer, run func(func())) {
	run(func() {
		sp := obs.Begin(t, "job", "inner", "driver", 0) // want "span sp begun here is not Ended"
		_ = sp
	})
}
