// Package kitchen exercises every ysmart-vet diagnostic kind with each
// finding silenced by a lint:ignore directive — both the trailing and
// the standalone-preceding-line forms. The driver test asserts the
// suite reports nothing here, proving the escape hatch works for every
// analyzer.
package kitchen

import (
	"math/rand"
	"time"

	"ysmart/internal/cmf"
	"ysmart/internal/obs"
)

// retired is gone.
//
// Deprecated: use nothing.
func retired() int { return 0 }

func useRetired() int {
	return retired() // lint:ignore deprecated exercising the trailing escape hatch
}

func clock() time.Time {
	// lint:ignore determinism exercising the standalone escape hatch
	return time.Now()
}

func roll() int {
	return rand.Intn(6) // lint:ignore determinism deliberate for the corpus
}

func emitMap(m map[string]int, emit func(string)) {
	for k := range m { // lint:ignore determinism deliberate for the corpus
		emit(k)
	}
}

func leakySpan(t obs.Tracer) {
	sp := obs.Begin(t, "job", "k", "driver", 0) // lint:ignore spanpair deliberate for the corpus
	_ = sp
}

func badJob() cmf.CommonJob {
	return cmf.CommonJob{
		Name: "kitchen",
		Ops:  []cmf.Op{&cmf.AggOp{OpName: "a"}},
		Outputs: []cmf.OutputSpec{
			{Op: "missing"}, // lint:ignore tagdispatch deliberate for the corpus
		},
	}
}
