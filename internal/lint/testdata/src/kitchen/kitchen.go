// Package kitchen exercises every ysmart-vet diagnostic kind with each
// finding silenced by a lint:ignore directive — both the trailing and
// the standalone-preceding-line forms. The driver test asserts the
// suite reports nothing here, proving the escape hatch works for every
// analyzer.
package kitchen

import (
	"math/rand"
	"sync"
	"time"

	"ysmart/internal/cmf"
	"ysmart/internal/obs"
)

// retired is gone.
//
// Deprecated: use nothing.
func retired() int { return 0 }

func useRetired() int {
	return retired() // lint:ignore deprecated exercising the trailing escape hatch
}

func clock() time.Time {
	// lint:ignore determinism exercising the standalone escape hatch
	return time.Now()
}

func roll() int {
	return rand.Intn(6) // lint:ignore determinism deliberate for the corpus
}

func emitMap(m map[string]int, emit func(string)) {
	for k := range m { // lint:ignore determinism deliberate for the corpus
		emit(k)
	}
}

func leakySpan(t obs.Tracer) {
	sp := obs.Begin(t, "job", "k", "driver", 0) // lint:ignore spanpair deliberate for the corpus
	_ = sp
}

func badJob() cmf.CommonJob {
	return cmf.CommonJob{
		Name: "kitchen",
		Ops:  []cmf.Op{&cmf.AggOp{OpName: "a"}},
		Outputs: []cmf.OutputSpec{
			{Op: "missing"}, // lint:ignore tagdispatch deliberate for the corpus
		},
	}
}

// viaClock exercises the interprocedural determinism diagnostic: the
// ignore on clock's own line silences the report there, but the base
// fact still propagates to callers, so this call needs its own.
func viaClock() time.Time {
	return clock() // lint:ignore determinism deliberate for the corpus
}

// oracle has no in-module implementation; the unresolvable-dispatch
// diagnostic fires at the call.
type oracle interface{ Tell() int }

func consult(o oracle) int {
	return o.Tell() // lint:ignore determinism deliberate for the corpus
}

type pool struct{ n int }

func (p *pool) forEachTask(n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

func gather(p *pool, lines []string) error {
	var out []string
	return p.forEachTask(len(lines), func(i int) error {
		// lint:ignore sharecheck exercising the standalone escape hatch
		out = append(out, lines[i])
		return nil
	})
}

var (
	kmuA sync.Mutex
	kmuB sync.Mutex
	kmuC sync.Mutex
)

// lockKitchenAB and lockKitchenBA seed a two-mutex cycle; the one
// diagnostic anchors at the smaller edge's acquisition below.
func lockKitchenAB() {
	kmuA.Lock()
	kmuB.Lock() // lint:ignore lockorder deliberate for the corpus
	kmuB.Unlock()
	kmuA.Unlock()
}

func lockKitchenBA() {
	kmuB.Lock()
	kmuA.Lock()
	kmuA.Unlock()
	kmuB.Unlock()
}

func leakyLoop() {
	// lint:ignore goleak exercising the standalone escape hatch
	go func() {
		for {
		}
	}()
}

func blockUnderLock(ch chan int) {
	kmuC.Lock()
	<-ch // lint:ignore lockheld deliberate for the corpus
	kmuC.Unlock()
}

type folder struct {
	mu sync.Mutex
	n  int
}

func (f *folder) ConcurrentReduce() {}

func (f *folder) Reduce(key string, vals []string, emit func(string)) error {
	f.n += len(vals) // lint:ignore concreduce deliberate for the corpus
	return nil
}
