// Package callgraph is the fixture for the call-graph builder tests:
// interface dispatch bounded to in-module implementations, method
// values, function references, mutual recursion, and an interface with
// no implementation at all — the case that must degrade to the
// conservative unresolved default.
package callgraph

// Animal has exactly two implementations below; a call through it must
// produce exactly two dynamic edges.
type Animal interface{ Speak() string }

type Dog struct{}

func (Dog) Speak() string { return "woof" }

type Cat struct{}

func (*Cat) Speak() string { return "meow" }

func Chorus(a Animal) string {
	return a.Speak()
}

// Ghost has no implementation anywhere in the module.
type Ghost interface{ Boo() }

func Spook(g Ghost) {
	g.Boo()
}

// Even and Odd are mutually recursive; graph searches must terminate.
func Even(n int) bool {
	if n == 0 {
		return true
	}
	return Odd(n - 1)
}

func Odd(n int) bool {
	if n == 0 {
		return false
	}
	return Even(n - 1)
}

func Apply(f func() string) string { return f() }

// PassRef calls Apply (static) and lets Leaf escape as a value (ref);
// Apply's own call through f carries no edge — the binding here does.
func PassRef() string {
	return Apply(Leaf)
}

func Leaf() string { return "leaf" }

// MethodValue takes a bound method value: a ref edge to Dog.Speak.
func MethodValue(d Dog) func() string {
	return d.Speak
}
