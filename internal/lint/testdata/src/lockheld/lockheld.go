// Package lockheld is the golden corpus for the lockheld analyzer:
// blocking operations — channel sends and receives outside a
// select-with-default, selects with no default, Wait, time.Sleep — must
// not be reachable while a mutex is held. Non-blocking selects,
// operations after the unlock, and go-spawned bodies (which start with
// nothing held) are refused.
package lockheld

import (
	"sync"
	"time"
)

var mu sync.Mutex

func recvHeld(ch chan int) {
	mu.Lock()
	<-ch // want "a channel receive while holding lockheld.mu"
	mu.Unlock()
}

func sendHeld(ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	ch <- 1 // want "a channel send while holding lockheld.mu"
}

func waitHeld(wg *sync.WaitGroup) {
	mu.Lock()
	wg.Wait() // want "a sync.WaitGroup.Wait while holding lockheld.mu"
	mu.Unlock()
}

func sleepHeld() {
	mu.Lock()
	time.Sleep(time.Millisecond) // want "a time.Sleep while holding lockheld.mu"
	mu.Unlock()
}

func selectHeld(a, b chan int) {
	mu.Lock()
	defer mu.Unlock()
	select { // want "a select with no default case while holding lockheld.mu"
	case <-a:
	case <-b:
	}
}

// callsBlocked reaches the blocking receive through a helper; the
// diagnostic names the path.
func callsBlocked(ch chan int) {
	mu.Lock()
	helper(ch) // want "call to lockheld.helper blocks while holding lockheld.mu: a channel receive at .* .path lockheld.helper."
	mu.Unlock()
}

func helper(ch chan int) {
	<-ch
}

// localHeld: an unidentified (local) mutex still counts as held.
func localHeld(ch chan int) {
	var l sync.Mutex
	l.Lock()
	<-ch // want "a channel receive while holding a mutex"
	l.Unlock()
}

// selectDefaultOK: a select with a default never blocks, and its comm
// operations are part of the non-blocking choice. Refused.
func selectDefaultOK(ch chan int) {
	mu.Lock()
	defer mu.Unlock()
	select {
	case v := <-ch:
		_ = v
	default:
	}
}

// afterUnlockOK blocks only once the lock is gone. Refused.
func afterUnlockOK(ch chan int) {
	mu.Lock()
	n := 1
	_ = n
	mu.Unlock()
	<-ch
}

// spawnOK: a go-spawned body starts with nothing held, so its receive
// is fine even though the spawner holds the lock. Refused.
func spawnOK(ch chan int) {
	mu.Lock()
	go func() {
		<-ch
	}()
	mu.Unlock()
}

// helperAfterUnlockOK: the helper blocks, but the call happens after
// the unlock. Refused.
func helperAfterUnlockOK(ch chan int) {
	mu.Lock()
	n := 1
	_ = n
	mu.Unlock()
	helper(ch)
}
