// Package sharecheck is the golden corpus for the sharecheck analyzer:
// closures run concurrently by forEachTask (or spawned with go) may
// write captured state only into their own task-index slot, under a
// mutex, or atomically — including through helper calls, resolved over
// the call graph. The clean functions pin down the sanctioned patterns,
// including the ownership rule that writes to objects a task created
// itself are private.
package sharecheck

import (
	"sync"
	"sync/atomic"
)

// engine mimics the mapreduce engine's worker-pool surface: the corpus
// analyzer triggers on the forEachTask name, not the real type.
type engine struct {
	mu sync.Mutex
	n  int
}

func (e *engine) forEachTask(n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}

var total int

// capturedAppend is the seeded race from the acceptance criteria: an
// unguarded captured append inside a forEachTask closure.
func capturedAppend(e *engine, lines []string) error {
	var out []string
	return e.forEachTask(len(lines), func(i int) error {
		out = append(out, lines[i]) // want "unguarded write to captured variable out"
		return nil
	})
}

func packageCounter(e *engine, n int) error {
	return e.forEachTask(n, func(i int) error {
		total++ // want "unguarded write to package variable total"
		return nil
	})
}

func (e *engine) receiverWrite(k int) error {
	return e.forEachTask(k, func(i int) error {
		e.n++ // want "unguarded write to receiver state e.n"
		return nil
	})
}

func derefWrite(e *engine, p *int, n int) error {
	return e.forEachTask(n, func(i int) error {
		*p = i // want "unguarded write to memory behind captured pointer p"
		return nil
	})
}

// slotWrites is the sanctioned output pattern: each task owns slot i.
func slotWrites(e *engine, lines []string) error {
	outs := make([][]string, len(lines))
	return e.forEachTask(len(lines), func(i int) error {
		outs[i] = append(outs[i], lines[i])
		return nil
	})
}

// boundBody proves the analyzer resolves a task bound to a local
// variable before the forEachTask call; the slot write inside is clean.
func boundBody(e *engine, lines []string) error {
	outs := make([]string, len(lines))
	task := func(i int) error {
		outs[i] = lines[i]
		return nil
	}
	return e.forEachTask(len(lines), task)
}

// opaque passes a task body the analyzer cannot see; assume-shared.
func opaque(e *engine, fn func(int) error) error {
	return e.forEachTask(4, fn) // want "task body passed to forEachTask is not statically visible"
}

func mutexGuarded(e *engine, n int) error {
	var mu sync.Mutex
	count := 0
	return e.forEachTask(n, func(i int) error {
		mu.Lock()
		count++
		mu.Unlock()
		return nil
	})
}

func atomicCounter(e *engine, n int) error {
	var count atomic.Int64
	return e.forEachTask(n, func(i int) error {
		count.Add(1)
		return nil
	})
}

func bumpTotal() { total++ }

// viaHelper reaches the shared write through a call; the diagnostic
// carries the offending path.
func viaHelper(e *engine, n int) error {
	return e.forEachTask(n, func(i int) error {
		bumpTotal() // want "parallel task body calls sharecheck.bumpTotal, which writes package variable total"
		return nil
	})
}

func (e *engine) bumpLocked() {
	e.mu.Lock()
	e.n++
	e.mu.Unlock()
}

// viaGuardedHelper: the helper locks around its write, so the task may
// call it freely.
func viaGuardedHelper(e *engine, n int) error {
	return e.forEachTask(n, func(i int) error {
		e.bumpLocked()
		return nil
	})
}

type acc struct{ n int }

func (a *acc) add(v int) { a.n += v }

// ownedAccumulator: the task created a itself, so add's receiver writes
// are private to the task — the ownership rule.
func ownedAccumulator(e *engine, n int) error {
	return e.forEachTask(n, func(i int) error {
		a := &acc{}
		a.add(i)
		return nil
	})
}

// sharedAccumulator: the same method on a captured object is a race.
func sharedAccumulator(e *engine, a *acc, n int) error {
	return e.forEachTask(n, func(i int) error {
		a.add(i) // want "parallel task body calls sharecheck.acc.add, which writes receiver state a.n"
		return nil
	})
}

type ghost interface{ Haunt() }

// viaGhost: no in-module type implements ghost, so the dispatch is
// unresolvable and the conservative assume-shared default fires. (The
// determinism analyzer reports the same site as unresolvable too.)
func viaGhost(e *engine, g ghost, n int) error {
	return e.forEachTask(n, func(i int) error {
		g.Haunt() // want "unresolvable"
		return nil
	})
}

// goSpawn: go-spawned bodies are parallel task regions with no task
// index; captured writes are flagged.
func goSpawn(n int) {
	done := make([]bool, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			done[0] = true // want "unguarded write to captured variable done"
		}()
	}
	wg.Wait()
}

// goNamed: a named function spawned directly is searched the same way.
func goNamed() {
	go bumpTotal() // want "goroutine body sharecheck.bumpTotal writes package variable total"
}
