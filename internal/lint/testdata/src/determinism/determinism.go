// Package determinism is the golden corpus for the determinism
// analyzer: wall-clock reads, global math/rand draws, and map-ordered
// emission are flagged; seeded generators and collect-then-sort loops
// are not.
package determinism

import (
	"math"
	"math/rand"
	"sort"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func globalRand() int {
	return rand.Intn(10) // want "rand.Intn draws from the global generator"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, k int) { xs[i], xs[k] = xs[k], xs[i] }) // want "rand.Shuffle draws from the global generator"
}

func seededRand(seed int64) float64 {
	r := rand.New(rand.NewSource(seed)) // constructors are the supported path
	return r.Float64()                  // methods on a seeded *rand.Rand are fine
}

func emitUnsorted(groups map[string][]string, emit func(string)) {
	for k := range groups { // want "map iteration order feeds a call to emit"
		emit(k)
	}
}

func appendUnsorted(m map[string]int) []string {
	var out []string
	for k := range m { // want "map iteration order feeds an append to out"
		out = append(out, k)
	}
	return out
}

func appendThenSort(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m { // collect-then-sort restores a deterministic order
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func localScratch(m map[string]int) int {
	n := 0
	for range m { // no emission escapes the loop
		n++
	}
	return n
}

func sliceRange(xs []string, emit func(string)) {
	for _, x := range xs { // slice order is deterministic
		emit(x)
	}
}

// --- interprocedural: sources reached through in-module helpers ---

func callsWallClock() int64 {
	return wallClock().UnixNano() // want "call to determinism.wallClock reaches time.Now \(wall clock\) via determinism.wallClock"
}

func helperRand() int {
	return globalRand() // want "call to determinism.globalRand reaches the global rand.Intn via determinism.globalRand"
}

func viaChain() int {
	return helperRand() // want "call to determinism.helperRand reaches the global rand.Intn via determinism.helperRand -> determinism.globalRand"
}

// handsOffClock lets a tainted function escape as a value; whoever
// receives it can call it, so the reference itself is flagged.
func handsOffClock() func() time.Time {
	return wallClock // want "reference to determinism.wallClock reaches time.Now \(wall clock\) via determinism.wallClock"
}

// callsSeeded: helpers that stick to seeded generators taint nothing.
func callsSeeded() float64 {
	return seededRand(7)
}

// oracle has no in-module implementation, so a call through it cannot
// be bounded; the conservative assume-nondeterministic default fires.
type oracle interface{ Draw() int }

func viaOracle(o oracle) int {
	return o.Draw() // want "dynamic call is unresolvable \(no in-module implementation of oracle.Draw\); assume nondeterministic"
}

// --- sort.Slice comparators: NaN-unsafe float orders and map-derived keys ---

func sortScores(xs []float64) {
	sort.Slice(xs, func(i, k int) bool { return xs[i] < xs[k] }) // want "sort.Slice comparator orders floats without math.IsNaN handling"
}

func sortScoresDesc(xs []float64) {
	sort.SliceStable(xs, func(i, k int) bool { return xs[i] > xs[k] }) // want "sort.SliceStable comparator orders floats without math.IsNaN handling"
}

// sortScoresTotal guards NaN explicitly, so the order is total: clean.
func sortScoresTotal(xs []float64) {
	sort.Slice(xs, func(i, k int) bool {
		if math.IsNaN(xs[i]) || math.IsNaN(xs[k]) {
			return math.IsNaN(xs[i]) && !math.IsNaN(xs[k])
		}
		return xs[i] < xs[k]
	})
}

func sortByCount(keys []string, counts map[string]int) {
	sort.Slice(keys, func(i, k int) bool { return counts[keys[i]] < counts[keys[k]] }) // want "sort.Slice comparator orders by map-derived values with no tie-break"
}

// sortByCountTieBreak falls back to the key itself on equal counts, so
// equal-valued elements have a deterministic order: clean.
func sortByCountTieBreak(keys []string, counts map[string]int) {
	sort.Slice(keys, func(i, k int) bool {
		if counts[keys[i]] != counts[keys[k]] {
			return counts[keys[i]] < counts[keys[k]]
		}
		return keys[i] < keys[k]
	})
}

// sortInts orders by a plain int slice element: clean.
func sortInts(xs []int) {
	sort.Slice(xs, func(i, k int) bool { return xs[i] < xs[k] })
}

// callsNaNSort: the comparator fact propagates through the call graph
// like any other nondeterminism source.
func callsNaNSort(xs []float64) {
	sortScores(xs) // want "call to determinism.sortScores reaches a NaN-unsafe float sort comparator via determinism.sortScores"
}
