// Package concreduce is the golden corpus for the concreduce analyzer:
// a type carrying the ConcurrentReduce marker promises a Reduce safe to
// run once per key group concurrently, so it must have a Reduce method,
// fold shared state only under a held mutex (helpers included), and
// never copy its lock-bearing struct by value.
package concreduce

import "sync"

// markedNoReduce breaks the marker's first promise.
type markedNoReduce struct{} // want "type markedNoReduce carries the ConcurrentReduce marker but has no Reduce method"

func (markedNoReduce) ConcurrentReduce() {}

// good is the exemplar: pointer receivers, mutex-folded state.
type good struct {
	mu sync.Mutex
	n  int
}

func (g *good) ConcurrentReduce() {}

func (g *good) Reduce(key string, vals []string, emit func(string)) error {
	g.mu.Lock()
	g.n += len(vals)
	g.mu.Unlock()
	for _, v := range vals {
		emit(key + v)
	}
	return nil
}

// racy writes its receiver with no lock held.
type racy struct {
	mu sync.Mutex
	n  int
}

func (r *racy) ConcurrentReduce() {}

func (r *racy) Reduce(key string, vals []string, emit func(string)) error {
	r.n += len(vals) // want "racy.Reduce writes receiver state r.n with no mutex held"
	return nil
}

// lazy hides the unguarded write behind a helper; the diagnostic names
// the path.
type lazy struct {
	mu sync.Mutex
	n  int
}

func (l *lazy) ConcurrentReduce() {}

func (l *lazy) bump() { l.n++ }

func (l *lazy) Reduce(key string, vals []string, emit func(string)) error {
	l.bump() // want "lazy.Reduce calls concreduce.lazy.bump, which writes receiver state l.n"
	return nil
}

// guarded takes the lock before calling the helper; the consumed edge
// is guarded and the search does not follow it.
type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) ConcurrentReduce() {}

func (g *guarded) bump() { g.n++ }

func (g *guarded) Reduce(key string, vals []string, emit func(string)) error {
	g.mu.Lock()
	g.bump()
	g.mu.Unlock()
	return nil
}

// owned builds a scratch accumulator per call; its receiver writes are
// private to this key group (the ownership rule).
type scratch struct{ n int }

func (s *scratch) add(v int) { s.n += v }

type owned struct {
	mu sync.Mutex
}

func (o *owned) ConcurrentReduce() {}

func (o *owned) Reduce(key string, vals []string, emit func(string)) error {
	s := &scratch{}
	for _, v := range vals {
		s.add(len(v))
	}
	emit(key)
	return nil
}

// valrecv copies its sync.Mutex into every call frame.
type valrecv struct {
	mu sync.Mutex
	n  int
}

func (v valrecv) ConcurrentReduce() {} // want "method valrecv.ConcurrentReduce has a value receiver"

func (v valrecv) Reduce(key string, vals []string, emit func(string)) error { // want "method valrecv.Reduce has a value receiver"
	return nil
}

// copier snapshots the whole struct — mutex included — by value.
type copier struct {
	mu sync.Mutex
	n  int
}

func (c *copier) ConcurrentReduce() {}

func (c *copier) Reduce(key string, vals []string, emit func(string)) error {
	snap := *c // want "copier.Reduce copies the lock-bearing struct through"
	_ = snap
	return nil
}

// spooky dispatches through an interface nothing in the module
// implements; assume-shared. (The determinism analyzer reports the same
// site as unresolvable too.)
type ghost interface{ Haunt() }

type spooky struct {
	mu sync.Mutex
	g  ghost
}

func (s *spooky) ConcurrentReduce() {}

func (s *spooky) Reduce(key string, vals []string, emit func(string)) error {
	s.g.Haunt() // want "unresolvable"
	return nil
}
