// Package lockorder is the golden corpus for the lockorder analyzer:
// the acquired-while-holding graph over identified mutexes (package
// globals and struct fields keyed by type) must be acyclic. The seeded
// two-mutex cycle below must be reported with both witness acquisition
// paths; consistent orders, read-only re-acquisition, and unidentified
// local mutexes must not fire.
package lockorder

import "sync"

var (
	muA sync.Mutex
	muB sync.Mutex
	muC sync.Mutex
	muD sync.Mutex
	muE sync.Mutex
	muF sync.RWMutex
	muG sync.Mutex
	muH sync.Mutex
	muI sync.Mutex
	muJ sync.Mutex
)

// lockAB and lockBA seed the classic two-mutex cycle: A then B in one
// path, B then A in the other. The diagnostic anchors at the smaller
// edge's acquisition and must print both witnesses.
func lockAB() {
	muA.Lock()
	defer muA.Unlock()
	muB.Lock() // want "lock-order cycle lockorder.muA -> lockorder.muB -> lockorder.muA: witness 1: .*lockAB .* while holding lockorder.muA .*witness 2: .*lockBA .* while holding lockorder.muB"
	defer muB.Unlock()
}

func lockBA() {
	muB.Lock()
	defer muB.Unlock()
	muA.Lock()
	defer muA.Unlock()
}

// lockCD closes a cycle through a callee: helperD acquires muD while
// muC is held only on entry, so witness 1 must print the caller chain.
func lockCD() {
	muC.Lock()
	defer muC.Unlock()
	helperD()
}

func helperD() {
	muD.Lock() // want "lock-order cycle lockorder.muC -> lockorder.muD -> lockorder.muC: witness 1: .*helperD .* holding lockorder.muC .held on entry via .*lockCD -> .*helperD.; witness 2:"
	defer muD.Unlock()
}

func lockDC() {
	muD.Lock()
	defer muD.Unlock()
	muC.Lock()
	defer muC.Unlock()
}

// relock re-acquires a write lock it already holds: self-deadlock.
func relock() {
	muE.Lock()
	muE.Lock() // want "lockorder.muE acquired while already held"
	muE.Unlock()
	muE.Unlock()
}

// rereadOK: nested read acquisition of the same RWMutex is not a
// self-deadlock (two RLocks may coexist); refused.
func rereadOK() {
	muF.RLock()
	defer muF.RUnlock()
	muF.RLock()
	muF.RUnlock()
}

// orderedOK: both call sites agree on the G-before-H order; no cycle.
func orderedOK() {
	muG.Lock()
	defer muG.Unlock()
	muH.Lock()
	defer muH.Unlock()
}

func orderedOKAgain() {
	muG.Lock()
	muH.Lock()
	muH.Unlock()
	muG.Unlock()
}

// localOK: a local mutex has no cross-function identity and creates no
// ordering edges.
func localOK() {
	var local sync.Mutex
	muG.Lock()
	local.Lock()
	local.Unlock()
	muG.Unlock()
}

// lockVia is a one-hop lock wrapper: callers' arguments resolve to
// acquisitions at the call site.
func lockVia(mu *sync.Mutex) {
	mu.Lock()
}

func unlockVia(mu *sync.Mutex) {
	mu.Unlock()
}

// viaIJ and viaJI close a cycle where one side of each acquisition goes
// through the wrapper.
func viaIJ() {
	lockVia(&muI)
	muJ.Lock() // want "lock-order cycle lockorder.muI -> lockorder.muJ -> lockorder.muI: witness 1: .*viaIJ .* holding lockorder.muI .*witness 2: .*viaJI"
	muJ.Unlock()
	unlockVia(&muI)
}

func viaJI() {
	muJ.Lock()
	lockVia(&muI)
	unlockVia(&muI)
	muJ.Unlock()
}
