// Package staleignore exercises the driver's suppression audit. One
// directive silences a real diagnostic, one silences nothing, one names
// a check that never ran, and one is a wildcard — the audit must report
// exactly the dead ones it can judge.
package staleignore

import "time"

func fresh() time.Time {
	return time.Now() // lint:ignore determinism this directive is used
}

func stale() int {
	return 42 // lint:ignore determinism nothing on this line to silence
}

func unjudged() int {
	return 43 // lint:ignore nosuchcheck the named check never runs
}

func wild() int {
	return 44 // lint:ignore * judged only when the full suite ran
}
