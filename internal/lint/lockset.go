package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// The lock-identity layer: where facts.go tracks *how many* mutexes are
// held (enough to ask "is any lock held here?"), the analyzers that
// reason about lock *ordering* need to know which lock object each
// Lock() call touches. Lock objects are identified structurally, the
// granularity the serving stack actually uses:
//
//   - a package-level mutex variable -> "pkg.var";
//   - a mutex field of a named struct, keyed by the type (not the
//     instance) -> "pkg.Type.field", so reuse.Store.mu is one lock no
//     matter how many stores exist. Type-keying over-approximates
//     (two instances of one type collapse), which is the sound
//     direction for deadlock detection;
//   - anything else (a local mutex, a parameter with no resolvable
//     argument) has no identity: it still counts as "a lock is held"
//     but produces no ordering edges, since it cannot alias a lock in
//     another function.
//
// One extra hop is resolved lexically: a helper whose body net-locks a
// *sync.Mutex / *sync.RWMutex parameter (a lock wrapper) makes its call
// sites acquisition sites of the argument's lock, so `lockBoth(&a.mu)`
// is tracked like `a.mu.Lock()`.
//
// The traversal mirrors facts.go's lexical approximation: statement
// order, deferred Unlock holds to function end, branch-local changes
// do not survive the join (must-hold lexically), and a go-spawned body
// starts with nothing held. Interprocedurally the propagation is
// may-hold: a callee reachable through static or dynamic edges from a
// locked call site is treated as entered with those locks held on at
// least one path. Ref edges do not propagate hold state — a function
// value bound under a lock usually runs long after the unlock.

// lockKey identifies one lock object and acquisition mode. Read
// acquisitions (RLock) are tracked distinctly from write acquisitions:
// Unlock releases only a write hold and RUnlock only a read hold, so a
// mispaired RLock/Unlock does not silently release anything.
type lockKey struct {
	// ID is the structural identity ("pkg.Type.field", "pkg.var"), or
	// "" for a lock with no cross-function identity.
	ID string
	// Read marks an RLock acquisition.
	Read bool
}

// heldLock is one entry of the lexical hold multiset: the lock plus the
// position where it was acquired (for witness rendering).
type heldLock struct {
	Key lockKey
	Pos token.Pos
}

// heldLocks is the ordered multiset of locks held at a program point.
type heldLocks struct {
	locks []heldLock
}

// push records an acquisition.
func (h *heldLocks) push(k lockKey, pos token.Pos) {
	h.locks = append(h.locks, heldLock{Key: k, Pos: pos})
}

// drop releases the most recent hold matching k (same ID, same mode).
// An unidentified release (ID "") falls back to the most recent
// unidentified hold of the same mode — the count-based approximation.
func (h *heldLocks) drop(k lockKey) {
	for i := len(h.locks) - 1; i >= 0; i-- {
		if h.locks[i].Key == k {
			h.locks = append(h.locks[:i], h.locks[i+1:]...)
			return
		}
	}
}

// snapshot copies the current hold set.
func (h *heldLocks) snapshot() []heldLock {
	return append([]heldLock(nil), h.locks...)
}

// clone duplicates the set for branch-local traversal.
func (h *heldLocks) clone() *heldLocks {
	return &heldLocks{locks: h.snapshot()}
}

// any reports whether anything is held.
func (h *heldLocks) any() bool { return len(h.locks) > 0 }

// lockIDOf resolves the structural identity of a mutex-valued
// expression ("" when it has none).
func lockIDOf(pkg *Package, e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		if obj, ok := pkg.Info.Uses[v].(*types.Var); ok && isPkgLevel(obj) && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	case *ast.UnaryExpr:
		if v.Op == token.AND {
			return lockIDOf(pkg, v.X)
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[v]; ok && sel.Kind() == types.FieldVal {
			t := sel.Recv()
			if p, ok := t.(*types.Pointer); ok {
				t = p.Elem()
			}
			if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Name() + "." + named.Obj().Name() + "." + v.Sel.Name
			}
			return ""
		}
		// Package-qualified variable (pkg.mu).
		if obj, ok := pkg.Info.Uses[v.Sel].(*types.Var); ok && isPkgLevel(obj) && obj.Pkg() != nil {
			return obj.Pkg().Name() + "." + obj.Name()
		}
	}
	return ""
}

// lockEventOf recognizes a Lock/RLock/Unlock/RUnlock call on a sync
// mutex and returns the lock key plus +1 (acquire) or -1 (release).
func lockEventOf(pkg *Package, e ast.Expr) (lockKey, int, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return lockKey{}, 0, false
	}
	recv := pkg.Info.Types[sel.X].Type
	if recv == nil || !isSyncMutex(recv) {
		return lockKey{}, 0, false
	}
	k := lockKey{ID: lockIDOf(pkg, sel.X)}
	switch sel.Sel.Name {
	case "Lock":
		return k, +1, true
	case "RLock":
		k.Read = true
		return k, +1, true
	case "Unlock":
		return k, -1, true
	case "RUnlock":
		k.Read = true
		return k, -1, true
	}
	return lockKey{}, 0, false
}

// visitHeld walks stmts in source order with the identified hold set,
// invoking visit on every node. Semantics mirror facts.go's visitLocked:
// deferred releases are ignored (the lock holds to function end),
// branch-local changes die at the join, and a go-spawned literal body
// is traversed with nothing held.
func visitHeld(pkg *Package, wraps map[*types.Func]map[int]int, stmts []ast.Stmt, held *heldLocks, visit func(n ast.Node, held *heldLocks)) {
	for _, s := range stmts {
		visitHeldStmt(pkg, wraps, s, held, visit)
	}
}

// visitHeldStmt handles one statement.
func visitHeldStmt(pkg *Package, wraps map[*types.Func]map[int]int, s ast.Stmt, held *heldLocks, visit func(n ast.Node, held *heldLocks)) {
	switch s := s.(type) {
	case *ast.ExprStmt:
		visitHeldExpr(pkg, wraps, s.X, held, visit)
		applyLockEvents(pkg, wraps, s.X, held)
	case *ast.DeferStmt:
		// A deferred release keeps the lock held to function end; a
		// deferred acquire is nonsense and ignored.
		visitHeldExpr(pkg, wraps, s.Call, held, visit)
	case *ast.BlockStmt:
		visitHeld(pkg, wraps, s.List, held, visit)
	case *ast.IfStmt:
		if s.Init != nil {
			visitHeldStmt(pkg, wraps, s.Init, held, visit)
		}
		visitHeldExpr(pkg, wraps, s.Cond, held, visit)
		visitHeld(pkg, wraps, s.Body.List, held.clone(), visit)
		if s.Else != nil {
			visitHeldStmt(pkg, wraps, s.Else, held.clone(), visit)
		}
	case *ast.ForStmt:
		if s.Init != nil {
			visitHeldStmt(pkg, wraps, s.Init, held, visit)
		}
		if s.Cond != nil {
			visitHeldExpr(pkg, wraps, s.Cond, held, visit)
		}
		visitHeld(pkg, wraps, s.Body.List, held.clone(), visit)
		if s.Post != nil {
			visitHeldStmt(pkg, wraps, s.Post, held.clone(), visit)
		}
	case *ast.RangeStmt:
		visitHeldExpr(pkg, wraps, s.X, held, visit)
		visit(s, held)
		visitHeld(pkg, wraps, s.Body.List, held.clone(), visit)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		visit(s, held)
		var clauses []ast.Stmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			clauses = s.Body.List
		case *ast.TypeSwitchStmt:
			clauses = s.Body.List
		case *ast.SelectStmt:
			clauses = s.Body.List
		}
		for _, c := range clauses {
			switch c := c.(type) {
			case *ast.CaseClause:
				for _, e := range c.List {
					visitHeldExpr(pkg, wraps, e, held, visit)
				}
				visitHeld(pkg, wraps, c.Body, held.clone(), visit)
			case *ast.CommClause:
				cl := held.clone()
				if c.Comm != nil {
					visitHeldStmt(pkg, wraps, c.Comm, cl, visit)
				}
				visitHeld(pkg, wraps, c.Body, cl, visit)
			}
		}
	case *ast.LabeledStmt:
		visitHeldStmt(pkg, wraps, s.Stmt, held, visit)
	case *ast.GoStmt:
		// The spawned body runs with none of the spawner's locks; a
		// named spawn's call expression is likewise visited unlocked so
		// hold state never propagates into the goroutine.
		visit(s, held)
		fresh := &heldLocks{}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			for _, arg := range s.Call.Args {
				visitHeldExpr(pkg, wraps, arg, held, visit)
			}
			visit(s.Call, fresh)
			visitHeld(pkg, wraps, lit.Body.List, fresh, visit)
		} else {
			visitHeldExpr(pkg, wraps, s.Call, fresh, visit)
		}
	default:
		if s == nil {
			return
		}
		visit(s, held)
		ast.Inspect(s, func(n ast.Node) bool {
			if n == nil || n == s {
				return true
			}
			if lit, ok := n.(*ast.FuncLit); ok {
				visitHeld(pkg, wraps, lit.Body.List, held.clone(), visit)
				return false
			}
			visit(n, held)
			return true
		})
	}
}

// visitHeldExpr visits one expression tree at a fixed hold state,
// recursing into function literals.
func visitHeldExpr(pkg *Package, wraps map[*types.Func]map[int]int, e ast.Expr, held *heldLocks, visit func(n ast.Node, held *heldLocks)) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			visitHeld(pkg, wraps, lit.Body.List, held.clone(), visit)
			return false
		}
		visit(n, held)
		return true
	})
}

// applyLockEvents updates the hold set for an expression statement: a
// direct Lock/Unlock call, or a call to a one-hop lock wrapper whose
// argument resolves to an identified lock.
func applyLockEvents(pkg *Package, wraps map[*types.Func]map[int]int, e ast.Expr, held *heldLocks) {
	if k, delta, ok := lockEventOf(pkg, e); ok {
		if delta > 0 {
			held.push(k, e.Pos())
		} else {
			held.drop(k)
		}
		return
	}
	for _, eff := range wrapperEffects(pkg, wraps, e) {
		if eff.delta > 0 {
			held.push(eff.key, e.Pos())
		} else {
			held.drop(eff.key)
		}
	}
}

// wrapperEffect is one lock acquisition or release a wrapper call
// performs on behalf of its caller.
type wrapperEffect struct {
	key   lockKey
	delta int
}

// wrapperEffects resolves a call to a lock wrapper into the effects on
// the caller's hold set. Only arguments with an identified lock resolve;
// a wrapper handed a local mutex contributes nothing.
func wrapperEffects(pkg *Package, wraps map[*types.Func]map[int]int, e ast.Expr) []wrapperEffect {
	if wraps == nil {
		return nil
	}
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil
	}
	var callee *types.Func
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		callee, _ = pkg.Info.Uses[f].(*types.Func)
	case *ast.SelectorExpr:
		callee, _ = pkg.Info.Uses[f.Sel].(*types.Func)
	}
	params := wraps[callee]
	if len(params) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(params))
	for i := range params {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var out []wrapperEffect
	for _, i := range idxs {
		enc := params[i]
		if i >= len(call.Args) {
			continue
		}
		id := lockIDOf(pkg, call.Args[i])
		if id == "" {
			continue
		}
		delta, read := decodeWrap(enc)
		out = append(out, wrapperEffect{key: lockKey{ID: id, Read: read}, delta: delta})
	}
	return out
}

// encodeWrap / decodeWrap pack a wrapper's net lock effect (±1, mode)
// into one int for the summary map.
func encodeWrap(delta int, read bool) int {
	if read {
		return delta * 2
	}
	return delta
}

func decodeWrap(enc int) (delta int, read bool) {
	if enc == 2 || enc == -2 {
		return enc / 2, true
	}
	return enc, false
}

// lockWrappers computes, for every function in the program, the net
// lock effect its body applies to each mutex-pointer parameter: +1 for
// a wrapper that locks it, -1 for one that unlocks it (read mode
// tracked separately). This is the one-hop resolution for locks passed
// by pointer through a helper; wrappers of wrappers are not chased.
func (g *CallGraph) lockWrappers() map[*types.Func]map[int]int {
	if g.prog.lockWraps != nil {
		return g.prog.lockWraps
	}
	wraps := make(map[*types.Func]map[int]int)
	for fn, d := range g.Decls {
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Params().Len() == 0 {
			continue
		}
		net := make(map[int]int) // param index -> net delta (read-encoded)
		ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			k, delta, ok := lockEventOf(d.Pkg, call)
			if !ok {
				return true
			}
			sel := call.Fun.(*ast.SelectorExpr)
			root := rootIdent(sel.X)
			if root == nil {
				return true
			}
			obj, _ := d.Pkg.Info.Uses[root].(*types.Var)
			if obj == nil || !isPointer(obj.Type()) {
				return true
			}
			for i := 0; i < sig.Params().Len(); i++ {
				if sig.Params().At(i) == obj {
					net[i] += encodeWrap(delta, k.Read)
				}
			}
			return true
		})
		params := make(map[int]int)
		for i, enc := range net {
			if enc != 0 {
				params[i] = enc
			}
		}
		if len(params) > 0 {
			wraps[fn] = params
		}
	}
	g.prog.lockWraps = wraps
	return wraps
}

// ---------------------------------------------------------------------------
// Per-function lock facts and may-hold propagation
// ---------------------------------------------------------------------------

// lockAcquire is one acquisition site with the locks lexically held
// just before it.
type lockAcquire struct {
	Key  lockKey
	Pos  token.Pos
	Held []heldLock
}

// lockCall is one outgoing call edge with the locks lexically held at
// the call site.
type lockCall struct {
	Edge CallEdge
	Held []heldLock
}

// lockFacts summarizes one function's lock behavior.
type lockFacts struct {
	Acquires []lockAcquire
	Calls    []lockCall
}

// lockFactsOf computes (and caches) the function's lock facts.
func (g *CallGraph) lockFactsOf(fn *types.Func) *lockFacts {
	if g.prog.lockFacts == nil {
		g.prog.lockFacts = make(map[*types.Func]*lockFacts)
	}
	if lf, ok := g.prog.lockFacts[fn]; ok {
		return lf
	}
	lf := &lockFacts{}
	g.prog.lockFacts[fn] = lf
	d, ok := g.Decls[fn]
	if !ok {
		return lf
	}
	pkg := d.Pkg
	wraps := g.lockWrappers()
	node := g.Nodes[fn]
	edgesAt := make(map[token.Pos][]CallEdge)
	if node != nil {
		for _, e := range node.Out {
			edgesAt[e.Pos] = append(edgesAt[e.Pos], e)
		}
	}
	held := &heldLocks{}
	visitHeld(pkg, wraps, d.Decl.Body.List, held, func(n ast.Node, held *heldLocks) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if k, delta, ok := lockEventOf(pkg, n); ok && delta > 0 {
				lf.Acquires = append(lf.Acquires, lockAcquire{Key: k, Pos: n.Pos(), Held: held.snapshot()})
			}
			for _, eff := range wrapperEffects(pkg, wraps, n) {
				if eff.delta > 0 {
					lf.Acquires = append(lf.Acquires, lockAcquire{Key: eff.key, Pos: n.Pos(), Held: held.snapshot()})
				}
			}
			takeLockEdges(lf, edgesAt, n.Pos(), held)
		case *ast.SelectorExpr:
			takeLockEdges(lf, edgesAt, n.Pos(), held)
		case *ast.Ident:
			takeLockEdges(lf, edgesAt, n.Pos(), held)
		}
	})
	sort.Slice(lf.Acquires, func(i, k int) bool { return lf.Acquires[i].Pos < lf.Acquires[k].Pos })
	sort.Slice(lf.Calls, func(i, k int) bool {
		a, b := lf.Calls[i], lf.Calls[k]
		if a.Edge.Pos != b.Edge.Pos {
			return a.Edge.Pos < b.Edge.Pos
		}
		return a.Edge.Callee.FullName() < b.Edge.Callee.FullName()
	})
	return lf
}

// takeLockEdges consumes the call edges keyed at pos, recording each
// with the current hold snapshot.
func takeLockEdges(lf *lockFacts, edgesAt map[token.Pos][]CallEdge, pos token.Pos, held *heldLocks) {
	edges, ok := edgesAt[pos]
	if !ok {
		return
	}
	delete(edgesAt, pos)
	for _, e := range edges {
		lf.Calls = append(lf.Calls, lockCall{Edge: e, Held: held.snapshot()})
	}
}

// heldVia records how a lock came to be held on entry to a function:
// inherited from Caller, whose call at Pos carried it.
type heldVia struct {
	Key    lockKey
	Caller *types.Func
	Pos    token.Pos
}

// entryHeld is the may-hold-on-entry relation: for each function, the
// identified locks some caller chain holds when the function starts.
// Propagation follows static and dynamic edges only (a ref edge binds a
// value that usually runs after the unlock) and skips go-spawned calls
// (visitHeld already clears their hold state).
func (g *CallGraph) entryHeld() map[*types.Func]map[string]heldVia {
	if g.prog.entryHeld != nil {
		return g.prog.entryHeld
	}
	entry := make(map[*types.Func]map[string]heldVia)
	fns := g.sortedFuncs()
	queue := append([]*types.Func(nil), fns...)
	queued := make(map[*types.Func]bool, len(fns))
	for _, fn := range fns {
		queued[fn] = true
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		queued[fn] = false
		lf := g.lockFactsOf(fn)
		for _, c := range lf.Calls {
			if c.Edge.Kind == EdgeRef {
				continue
			}
			callee := c.Edge.Callee
			add := func(key lockKey) {
				if key.ID == "" {
					return
				}
				m := entry[callee]
				if m == nil {
					m = make(map[string]heldVia)
					entry[callee] = m
				}
				if _, ok := m[key.ID]; ok {
					return
				}
				m[key.ID] = heldVia{Key: key, Caller: fn, Pos: c.Edge.Pos}
				if !queued[callee] {
					queued[callee] = true
					queue = append(queue, callee)
				}
			}
			for _, h := range c.Held {
				add(h.Key)
			}
			ids := make([]string, 0, len(entry[fn]))
			for id := range entry[fn] {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			for _, id := range ids {
				add(entry[fn][id].Key)
			}
		}
	}
	g.prog.entryHeld = entry
	return entry
}

// entryChain renders the caller chain through which fn inherits the
// lock id, outermost caller first, ending at fn. The chain terminates
// at the function that holds the lock lexically.
func (g *CallGraph) entryChain(entry map[*types.Func]map[string]heldVia, fn *types.Func, id string) []*types.Func {
	chain := []*types.Func{fn}
	cur := fn
	for hop := 0; hop < 32; hop++ {
		via, ok := entry[cur][id]
		if !ok {
			break
		}
		chain = append([]*types.Func{via.Caller}, chain...)
		cur = via.Caller
	}
	return chain
}

// sortedFuncs returns every graphed function in FullName order, the
// deterministic iteration the lock passes rely on.
func (g *CallGraph) sortedFuncs() []*types.Func {
	fns := make([]*types.Func, 0, len(g.Nodes))
	for fn := range g.Nodes {
		fns = append(fns, fn)
	}
	sort.Slice(fns, func(i, k int) bool { return fns[i].FullName() < fns[k].FullName() })
	return fns
}
