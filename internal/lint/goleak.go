package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak proves that every spawned goroutine in the serving path has a
// termination signal. The base fact is a function (or go-spawned
// literal) that lexically cannot exit: a `for {}` loop from which no
// return, break, goto, or panic escapes, or an empty `select {}`. Every
// `go` statement is checked against the spawned body directly and
// against everything it reaches through static and dynamic call edges —
// a worker that returns when its done-channel closes, a bounded
// (conditioned or range) loop, or a WaitGroup-disciplined body all pass
// because their loops have an exit; a poll loop someone forgot to wire
// to shutdown does not. Ref edges are not followed: handing a function
// value onward is the binding site's responsibility.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc:  "every go statement must reach a provable exit; report spawn sites whose bodies can never terminate",
	Packages: []string{
		"internal/server",
		"internal/reuse",
		"internal/obs",
		"internal/mapreduce",
		"cmd/ysmart-server",
		"cmd/ysmart-loadgen",
	},
	Run: runGoLeak,
}

func runGoLeak(pass *Pass) {
	g := pass.Prog.CallGraph()
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkSpawn(pass, g, fn, gs)
				return true
			})
		}
	}
}

// checkSpawn vets one go statement: the literal body itself (when the
// spawn is a literal) plus everything reachable from the call edges the
// spawn carries.
func checkSpawn(pass *Pass, g *CallGraph, fn *types.Func, gs *ast.GoStmt) {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if f := neverExits(lit.Body); f != nil {
			pass.Reportf(gs.Pos(),
				"goroutine spawned here never provably exits: %s at %s; add a termination signal (return on a context/done receive, a bounded loop, or WaitGroup discipline)",
				f.Desc, g.posStr(f.Pos))
			return
		}
		// Calls made by the literal: edges are attributed to the
		// enclosing function, keyed inside the literal's span.
		checkSpawnEdges(pass, g, fn, lit.Pos(), lit.End(), gs.Pos())
		return
	}
	checkSpawnEdges(pass, g, fn, gs.Call.Pos(), gs.Call.End(), gs.Pos())
}

// checkSpawnEdges searches from every static/dynamic edge in the span
// for a function that can never exit.
func checkSpawnEdges(pass *Pass, g *CallGraph, fn *types.Func, from, to token.Pos, spawn token.Pos) {
	node := g.Nodes[fn]
	if node == nil {
		return
	}
	for _, e := range node.Out {
		if e.Pos < from || e.Pos >= to || e.Kind == EdgeRef {
			continue
		}
		path, fact := g.reachLeak(e.Callee)
		if fact == nil {
			continue
		}
		pass.Reportf(spawn,
			"goroutine spawned here never provably exits: %s has %s at %s (path %s); add a termination signal (return on a context/done receive, a bounded loop, or WaitGroup discipline)",
			shortFuncName(path[len(path)-1]), fact.Desc, g.posStr(fact.Pos), pathString(path))
		return
	}
}

// reachLeak searches breadth-first from start for a function whose body
// can never exit, following static and dynamic edges only.
func (g *CallGraph) reachLeak(start *types.Func) ([]*types.Func, *Fact) {
	type item struct {
		fn   *types.Func
		prev *item
	}
	expand := func(it *item) []*types.Func {
		var path []*types.Func
		for ; it != nil; it = it.prev {
			path = append([]*types.Func{it.fn}, path...)
		}
		return path
	}
	seen := map[*types.Func]bool{start: true}
	queue := []*item{{fn: start}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if f := g.leakFactOf(it.fn); f != nil {
			return expand(it), f
		}
		node := g.Nodes[it.fn]
		if node == nil {
			continue
		}
		for _, e := range node.Out {
			if e.Kind == EdgeRef || seen[e.Callee] {
				continue
			}
			seen[e.Callee] = true
			queue = append(queue, &item{fn: e.Callee, prev: it})
		}
	}
	return nil, nil
}

// leakFactOf computes (and caches) whether the function's own body —
// nested literals excluded — contains a loop or select that can never
// exit.
func (g *CallGraph) leakFactOf(fn *types.Func) *Fact {
	if g.prog.leak == nil {
		g.prog.leak = make(map[*types.Func]*Fact)
	}
	if f, ok := g.prog.leak[fn]; ok {
		return f
	}
	var fact *Fact
	if d, ok := g.Decls[fn]; ok {
		fact = neverExits(d.Decl.Body)
	}
	g.prog.leak[fn] = fact
	return fact
}

// neverExits scans a body (nested function literals excluded) for a
// construct that can never terminate: a `for {}` with no escaping
// return/break/goto/panic, or an empty `select {}`.
func neverExits(body *ast.BlockStmt) *Fact {
	var fact *Fact
	ast.Inspect(body, func(n ast.Node) bool {
		if fact != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.LabeledStmt:
			if loop, ok := n.Stmt.(*ast.ForStmt); ok && loop.Cond == nil {
				if !loopExits(loop, n.Label.Name) {
					fact = &Fact{Pos: loop.Pos(), Desc: "a for {} loop with no reachable return, break, or goto"}
				}
				return false
			}
		case *ast.ForStmt:
			if n.Cond == nil && !loopExits(n, "") {
				fact = &Fact{Pos: n.Pos(), Desc: "a for {} loop with no reachable return, break, or goto"}
				return false
			}
		case *ast.SelectStmt:
			if len(n.Body.List) == 0 {
				fact = &Fact{Pos: n.Pos(), Desc: "an empty select {} that blocks forever"}
				return false
			}
		}
		return true
	})
	return fact
}

// loopExits reports whether any statement inside the loop body escapes
// it: a return, a goto, a panic or fatal exit, an unlabeled break that
// binds to this loop, or a labeled break naming its label. Nested
// function literals are skipped (they run on their own stack), and
// unlabeled breaks inside nested loops, switches, and selects bind to
// the inner construct.
func loopExits(loop *ast.ForStmt, label string) bool {
	exits := false
	var walk func(n ast.Node, breakBinds bool)
	walk = func(n ast.Node, breakBinds bool) {
		if n == nil || exits {
			return
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if exits || m == nil {
				return false
			}
			switch m := m.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				exits = true
			case *ast.BranchStmt:
				switch m.Tok {
				case token.GOTO:
					exits = true
				case token.BREAK:
					if m.Label != nil {
						if label != "" && m.Label.Name == label {
							exits = true
						}
					} else if breakBinds {
						exits = true
					}
				}
			case *ast.CallExpr:
				if isTerminalCall(m) {
					exits = true
				}
			case *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
				if m != n {
					walk(m, false)
					return false
				}
			}
			return true
		})
	}
	walk(loop.Body, true)
	return exits
}

// isTerminalCall recognizes calls that never return to the loop: the
// panic builtin and the conventional hard exits (os.Exit, log.Fatal*,
// runtime.Goexit). Lexical matching is enough here — a false match only
// suppresses a report.
func isTerminalCall(call *ast.CallExpr) bool {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name == "panic"
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(f.X).(*ast.Ident)
		if !ok {
			return false
		}
		switch base.Name + "." + f.Sel.Name {
		case "os.Exit", "runtime.Goexit", "log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}
