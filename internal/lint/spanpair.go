package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SpanPair enforces the obs.ActiveSpan contract: a span opened with
// obs.Begin must be Ended on every return path of the function that
// opened it — otherwise a traced run drops the span (or, worse, drops
// it only on error paths, making traces differ between replays that
// should be byte-identical). `defer span.End(...)` satisfies every
// path at once. A span handle that escapes the function (passed to a
// call, stored, or returned) transfers the obligation and is not
// tracked further.
var SpanPair = &Analyzer{
	Name: "spanpair",
	Doc:  "flag obs.Begin spans not Ended on every return path of the enclosing function",
	Run:  runSpanPair,
}

func runSpanPair(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body != nil {
				checkSpanFn(pass, body)
			}
			return true
		})
	}
}

// spanWalker tracks, along one control-flow path, the spans begun but
// not yet ended. Branches fork the state and merge by union (a span
// open on any surviving path stays an obligation), the conservative
// join for a must-end property.
type spanWalker struct {
	pass *Pass
	// reported dedups diagnostics per Begin site.
	reported map[token.Pos]bool
}

// openSpans maps each live span variable to its Begin position.
type openSpans map[*types.Var]token.Pos

func (o openSpans) clone() openSpans {
	c := make(openSpans, len(o))
	for k, v := range o {
		c[k] = v
	}
	return c
}

func (o openSpans) union(other openSpans) {
	for k, v := range other {
		o[k] = v
	}
}

// checkSpanFn runs the walker over one function body. Nested function
// literals are separate scopes checked by their own walk; the outer
// walk does not descend into them (a Begin inside a closure must End
// inside that closure or escape it).
func checkSpanFn(pass *Pass, body *ast.BlockStmt) {
	w := &spanWalker{pass: pass, reported: make(map[token.Pos]bool)}
	open := make(openSpans)
	terminated := w.walkStmts(body.List, open)
	if !terminated {
		// Falling off the end of the body is a return path too.
		for v, pos := range open {
			w.report(pos, v, body.End())
		}
	}
}

func (w *spanWalker) report(beginPos token.Pos, v *types.Var, exitPos token.Pos) {
	if w.reported[beginPos] {
		return
	}
	w.reported[beginPos] = true
	exit := w.pass.Prog.Fset.Position(exitPos)
	w.pass.Reportf(beginPos,
		"span %s begun here is not Ended on the return path at line %d; End it on every path (defer span.End(...))",
		v.Name(), exit.Line)
}

// walkStmts walks a statement list, updating open in place. It returns
// true when the list terminates (returns or panics) on every path.
func (w *spanWalker) walkStmts(list []ast.Stmt, open openSpans) bool {
	for _, s := range list {
		if w.walkStmt(s, open) {
			return true
		}
	}
	return false
}

// walkStmt handles one statement; reports and returns true when the
// statement terminates every path through it.
func (w *spanWalker) walkStmt(s ast.Stmt, open openSpans) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		w.trackAssign(s, open)
	case *ast.ExprStmt:
		if v := w.endedVar(s.X); v != nil {
			delete(open, v)
			return false
		}
		w.escapeUses(s.X, open)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true // unwinding runs deferred Ends, not explicit ones
			}
		}
	case *ast.DeferStmt:
		// A deferred End (direct or inside a deferred closure) covers
		// every path from here on.
		if v := w.endedVar(s.Call); v != nil {
			delete(open, v)
		} else {
			for v := range open {
				if usesVar(s.Call, w.pass, v) {
					delete(open, v)
				}
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			w.escapeUses(r, open)
		}
		for v, pos := range open {
			w.report(pos, v, s.Pos())
		}
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, open)
		}
		thenOpen := open.clone()
		thenTerm := w.walkStmts(s.Body.List, thenOpen)
		elseOpen := open.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = w.walkStmt(s.Else, elseOpen)
		}
		for k := range open {
			delete(open, k)
		}
		if !thenTerm {
			open.union(thenOpen)
		}
		if !elseTerm {
			open.union(elseOpen)
		}
		return thenTerm && elseTerm
	case *ast.BlockStmt:
		return w.walkStmts(s.List, open)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, open)
		}
		bodyOpen := open.clone()
		w.walkStmts(s.Body.List, bodyOpen)
		open.union(bodyOpen)
	case *ast.RangeStmt:
		bodyOpen := open.clone()
		w.walkStmts(s.Body.List, bodyOpen)
		open.union(bodyOpen)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		return w.walkBranches(s, open)
	case *ast.LabeledStmt:
		return w.walkStmt(s.Stmt, open)
	case *ast.GoStmt:
		w.escapeUses(s.Call, open)
	case *ast.DeclStmt:
		// var sp = obs.Begin(...) — rare, but track it.
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == 1 && len(vs.Values) == 1 {
					w.trackDefine(vs.Names[0], vs.Values[0], open)
				}
			}
		}
	}
	return false
}

// walkBranches handles switch/type-switch/select: each clause forks the
// state; the merged result is the union of non-terminating clauses. The
// statement terminates only if every clause terminates and (for
// switches) a default clause exists.
func (w *spanWalker) walkBranches(s ast.Stmt, open openSpans) bool {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, open)
		}
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, open)
		}
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	merged := make(openSpans)
	allTerm := len(clauses) > 0
	for _, c := range clauses {
		var body []ast.Stmt
		switch c := c.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			body = c.Body
		case *ast.CommClause:
			if c.Comm == nil {
				hasDefault = true
			}
			body = c.Body
		}
		cOpen := open.clone()
		if !w.walkStmts(body, cOpen) {
			allTerm = false
			merged.union(cOpen)
		}
	}
	if !hasDefault {
		merged.union(open)
		allTerm = false
	}
	for k := range open {
		delete(open, k)
	}
	open.union(merged)
	return allTerm
}

// trackAssign records spans begun by `x := obs.Begin(...)` (or plain
// assignment) and treats other appearances of tracked vars as escapes.
func (w *spanWalker) trackAssign(s *ast.AssignStmt, open openSpans) {
	if len(s.Lhs) == 1 && len(s.Rhs) == 1 {
		if id, ok := s.Lhs[0].(*ast.Ident); ok {
			w.trackDefine(id, s.Rhs[0], open)
			return
		}
	}
	for _, r := range s.Rhs {
		w.escapeUses(r, open)
	}
}

// trackDefine binds a Begin call's result to the variable named by id.
func (w *spanWalker) trackDefine(id *ast.Ident, rhs ast.Expr, open openSpans) {
	if id.Name == "_" {
		if _, bare := rhs.(*ast.Ident); bare {
			return // `_ = sp` satisfies the compiler, not the End obligation
		}
	}
	if !isBeginCall(w.pass, rhs) {
		w.escapeUses(rhs, open)
		return
	}
	obj := w.pass.Pkg.Info.Defs[id]
	if obj == nil {
		obj = w.pass.Pkg.Info.Uses[id]
	}
	if v, ok := obj.(*types.Var); ok {
		open[v] = rhs.Pos()
	}
}

// isBeginCall reports whether e calls obs.Begin.
func isBeginCall(pass *Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Name() == "Begin" && fn.Pkg() != nil &&
		strings.HasSuffix(fn.Pkg().Path(), "internal/obs")
}

// endedVar returns the tracked variable x when e is `x.End(...)`.
func (w *spanWalker) endedVar(e ast.Expr) *types.Var {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return nil
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil
	}
	if v, ok := w.pass.Pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	return nil
}

// escapeUses drops from the open set any tracked span that appears in
// e: its handle has been handed to code this walker cannot see, which
// now owns the End obligation.
func (w *spanWalker) escapeUses(e ast.Expr, open openSpans) {
	if e == nil {
		return
	}
	for v := range open {
		if usesVar(e, w.pass, v) {
			delete(open, v)
		}
	}
}

// usesVar reports whether the expression references the variable.
func usesVar(e ast.Expr, pass *Pass, v *types.Var) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == v {
			found = true
		}
		return true
	})
	return found
}
