package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Deprecated flags uses of module identifiers whose doc comment carries
// a "Deprecated:" paragraph (the standard Go convention). Declarations
// themselves are not flagged — a deprecated field may legitimately live
// on as documented fallback — but every read or write of one is, so
// retired plumbing cannot creep back in. Sites that must keep touching
// the field (its own validator, for instance) annotate with
// `// lint:ignore deprecated <reason>`.
var Deprecated = &Analyzer{
	Name: "deprecated",
	Doc:  "flag uses of identifiers documented as Deprecated:",
	Run:  runDeprecated,
}

func runDeprecated(pass *Pass) {
	deprecated := pass.Prog.deprecatedObjects()
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil {
				return true
			}
			if note, ok := deprecated[obj]; ok {
				pass.Reportf(id.Pos(), "%s is deprecated: %s", id.Name, note)
			}
			return true
		})
	}
}

// deprecatedObjects scans every loaded module package once for
// declarations documented "Deprecated:" and maps their objects to the
// first line of the deprecation note.
func (prog *Program) deprecatedObjects() map[types.Object]string {
	if prog.deprecatedOnce {
		return prog.deprecated
	}
	prog.deprecatedOnce = true
	prog.deprecated = make(map[types.Object]string)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			collectDeprecated(pkg, file, prog.deprecated)
		}
	}
	return prog.deprecated
}

// collectDeprecated records the deprecated declarations of one file.
func collectDeprecated(pkg *Package, file *ast.File, out map[types.Object]string) {
	mark := func(id *ast.Ident, note string) {
		if obj := pkg.Info.Defs[id]; obj != nil {
			out[obj] = note
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if note, ok := deprecationNote(n.Doc); ok {
				mark(n.Name, note)
			}
		case *ast.GenDecl:
			declNote, declOK := deprecationNote(n.Doc)
			for _, spec := range n.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if note, ok := deprecationNote(s.Doc); ok {
						mark(s.Name, note)
					} else if declOK {
						mark(s.Name, declNote)
					}
				case *ast.ValueSpec:
					if note, ok := deprecationNote(s.Doc); ok {
						for _, name := range s.Names {
							mark(name, note)
						}
					} else if declOK {
						for _, name := range s.Names {
							mark(name, declNote)
						}
					}
				}
			}
		case *ast.StructType:
			if n.Fields == nil {
				return true
			}
			for _, f := range n.Fields.List {
				note, ok := deprecationNote(f.Doc)
				if !ok {
					note, ok = deprecationNote(f.Comment)
				}
				if !ok {
					continue
				}
				for _, name := range f.Names {
					mark(name, note)
				}
			}
		}
		return true
	})
}

// deprecationNote extracts the first line of a "Deprecated:" paragraph
// from a comment group.
func deprecationNote(cg *ast.CommentGroup) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, line := range strings.Split(cg.Text(), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "Deprecated:"); ok {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}
