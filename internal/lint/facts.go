package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// The fact-propagation layer: analyzers describe what a single function
// does (a base fact), and the engine answers "is any such fact reachable
// from here?" over the call graph, returning a witness path for the
// diagnostic. Two fact families are built in, because three analyzers
// share them:
//
//   - nondeterminism facts (computed in determinism.go): the function
//     reads the wall clock, draws from the global math/rand generator,
//     or emits in map-iteration order;
//   - effect facts (this file): the function writes shared state —
//     package-level variables, receiver fields, or memory behind pointer
//     parameters — at a point where it holds no mutex, and the calls it
//     makes while unlocked.
//
// Lock tracking is a lexical approximation, not a proof: Lock/Unlock
// calls on sync.Mutex / sync.RWMutex values are interpreted in statement
// order, a deferred Unlock holds to function end, and a lock taken
// inside a branch is dropped at the join (the conservative direction —
// a write is only ever considered guarded when every path to it locked).
// Any held mutex guards any write; the analyzers check the locking
// convention, they do not model which lock protects which field.

// Fact is one terminal finding a reachability query can land on.
type Fact struct {
	Pos  token.Pos
	Desc string
}

// reachFact searches breadth-first from start (inclusive) for the
// nearest function with a base fact, following every edge kind. When
// includeUnresolved is set, a node with unresolved dynamic calls is
// itself terminal — the assume-impure default. The returned path runs
// start..target.
func (g *CallGraph) reachFact(start *types.Func, base func(*types.Func) *Fact, includeUnresolved bool) ([]*types.Func, *Fact) {
	type item struct {
		fn   *types.Func
		prev *item
	}
	expand := func(it *item) []*types.Func {
		path := []*types.Func{}
		for ; it != nil; it = it.prev {
			path = append([]*types.Func{it.fn}, path...)
		}
		return path
	}
	seen := map[*types.Func]bool{start: true}
	queue := []*item{{fn: start}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if f := base(it.fn); f != nil {
			return expand(it), f
		}
		node := g.Nodes[it.fn]
		if node == nil {
			continue
		}
		if includeUnresolved && len(node.Unresolved) > 0 {
			u := node.Unresolved[0]
			return expand(it), &Fact{Pos: u.Pos, Desc: "an unresolved dynamic call (" + u.Desc + ")"}
		}
		for _, e := range node.Out {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				queue = append(queue, &item{fn: e.Callee, prev: it})
			}
		}
	}
	return nil, nil
}

// ---------------------------------------------------------------------------
// Lock-aware traversal
// ---------------------------------------------------------------------------

// visitLocked walks stmts in source order, invoking visit on every node
// with the number of mutexes held at that point, and returns the held
// count after the list. Nested function literals inherit the lexical
// lock state (an approximation: a closure built under a lock usually
// runs under it or owns its own discipline, and the conservative
// analyzers re-check writes inside it anyway).
func visitLocked(pkg *Package, stmts []ast.Stmt, held int, visit func(n ast.Node, held bool)) int {
	for _, s := range stmts {
		held = visitLockedStmt(pkg, s, held, visit)
	}
	return held
}

// visitLockedStmt handles one statement.
func visitLockedStmt(pkg *Package, s ast.Stmt, held int, visit func(n ast.Node, held bool)) int {
	switch s := s.(type) {
	case *ast.ExprStmt:
		visitExprLocked(pkg, s.X, held, visit)
		switch lockDelta(pkg, s.X) {
		case +1:
			held++
		case -1:
			if held > 0 {
				held--
			}
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function; a deferred Lock (nonsense) is ignored.
		visitExprLocked(pkg, s.Call, held, visit)
	case *ast.BlockStmt:
		held = visitLocked(pkg, s.List, held, visit)
	case *ast.IfStmt:
		if s.Init != nil {
			held = visitLockedStmt(pkg, s.Init, held, visit)
		}
		visitExprLocked(pkg, s.Cond, held, visit)
		visitLocked(pkg, s.Body.List, held, visit)
		if s.Else != nil {
			visitLockedStmt(pkg, s.Else, held, visit)
		}
		// Lock state changes inside branches do not survive the join.
	case *ast.ForStmt:
		if s.Init != nil {
			held = visitLockedStmt(pkg, s.Init, held, visit)
		}
		if s.Cond != nil {
			visitExprLocked(pkg, s.Cond, held, visit)
		}
		visitLocked(pkg, s.Body.List, held, visit)
		if s.Post != nil {
			visitLockedStmt(pkg, s.Post, held, visit)
		}
	case *ast.RangeStmt:
		visitExprLocked(pkg, s.X, held, visit)
		visit(s, held > 0)
		visitLocked(pkg, s.Body.List, held, visit)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		visit(s, held > 0)
		var clauses []ast.Stmt
		switch s := s.(type) {
		case *ast.SwitchStmt:
			clauses = s.Body.List
		case *ast.TypeSwitchStmt:
			clauses = s.Body.List
		case *ast.SelectStmt:
			clauses = s.Body.List
		}
		for _, c := range clauses {
			switch c := c.(type) {
			case *ast.CaseClause:
				for _, e := range c.List {
					visitExprLocked(pkg, e, held, visit)
				}
				visitLocked(pkg, c.Body, held, visit)
			case *ast.CommClause:
				if c.Comm != nil {
					visitLockedStmt(pkg, c.Comm, held, visit)
				}
				visitLocked(pkg, c.Body, held, visit)
			}
		}
	case *ast.LabeledStmt:
		held = visitLockedStmt(pkg, s.Stmt, held, visit)
	case *ast.GoStmt:
		// The spawned body starts with no inherited lock: the goroutine
		// runs after the spawner may have unlocked.
		visit(s, held > 0)
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			for _, arg := range s.Call.Args {
				visitExprLocked(pkg, arg, held, visit)
			}
			visit(s.Call, held > 0)
			visitLocked(pkg, lit.Body.List, 0, visit)
		} else {
			visitExprLocked(pkg, s.Call, held, visit)
		}
	default:
		// Leaf statements (assign, incdec, return, send, branch, decl):
		// visit the statement and its expressions at the current state.
		if s == nil {
			return held
		}
		visit(s, held > 0)
		ast.Inspect(s, func(n ast.Node) bool {
			if n == nil || n == s {
				return true
			}
			if lit, ok := n.(*ast.FuncLit); ok {
				visitLocked(pkg, lit.Body.List, held, visit)
				return false
			}
			visit(n, held > 0)
			return true
		})
	}
	return held
}

// visitExprLocked visits one expression tree at a fixed lock state,
// recursing into function literals with visitLocked.
func visitExprLocked(pkg *Package, e ast.Expr, held int, visit func(n ast.Node, held bool)) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if lit, ok := n.(*ast.FuncLit); ok {
			visitLocked(pkg, lit.Body.List, held, visit)
			return false
		}
		visit(n, held > 0)
		return true
	})
}

// lockDelta reports +1 for expr being a Lock/RLock call on a sync mutex,
// -1 for Unlock/RUnlock, 0 otherwise.
func lockDelta(pkg *Package, e ast.Expr) int {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return 0
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	recv := pkg.Info.Types[sel.X].Type
	if recv == nil || !isSyncMutex(recv) {
		return 0
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		return +1
	case "Unlock", "RUnlock":
		return -1
	}
	return 0
}

// isSyncMutex reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isSyncMutex(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if named.Obj().Pkg().Path() != "sync" {
		return false
	}
	name := named.Obj().Name()
	return name == "Mutex" || name == "RWMutex"
}

// isAtomicCall reports whether the call goes to sync/atomic — either a
// package function (atomic.AddInt64) or a method on an atomic type
// (counter.Add). Atomic operations are commutative folds, the sanctioned
// lock-free write.
func isAtomicCall(pkg *Package, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
		return fn.Pkg().Path() == "sync/atomic"
	}
	return false
}

// ---------------------------------------------------------------------------
// Effect facts: unguarded shared writes and unguarded calls
// ---------------------------------------------------------------------------

// sharedWrite is one write to caller-visible state made with no lock
// held. Writes rooted in the receiver or a pointer parameter are
// suppressible: when the calling context provably owns the object the
// method runs on (a local it just created), those writes are private and
// the reachability search skips them. Package-variable writes never are.
type sharedWrite struct {
	pos          token.Pos
	desc         string
	suppressible bool
}

// fnEffects summarizes one function's lock-free behavior.
type fnEffects struct {
	writes     []sharedWrite
	calls      []CallEdge
	unresolved []UnresolvedCall
}

// effectsOf computes (and caches) the function's effect facts. Shared
// roots are package-level variables, the method receiver, and pointer-
// typed parameters — everything a concurrent caller could also see.
func (g *CallGraph) effectsOf(fn *types.Func) *fnEffects {
	if g.prog.effects == nil {
		g.prog.effects = make(map[*types.Func]*fnEffects)
	}
	if eff, ok := g.prog.effects[fn]; ok {
		return eff
	}
	eff := &fnEffects{}
	g.prog.effects[fn] = eff // pre-store: cycles see an empty summary
	d, ok := g.Decls[fn]
	if !ok {
		return eff
	}
	pkg := d.Pkg
	node := g.Nodes[fn]
	// Call edges (static, dynamic) are keyed at their CallExpr position;
	// ref edges at the referencing expression's position. Each is
	// consumed once, at the lock state the traversal observes there.
	edgesAt := make(map[token.Pos][]CallEdge)
	if node != nil {
		for _, e := range node.Out {
			edgesAt[e.Pos] = append(edgesAt[e.Pos], e)
		}
	}
	unresAt := make(map[token.Pos]UnresolvedCall)
	if node != nil {
		for _, u := range node.Unresolved {
			unresAt[u.Pos] = u
		}
	}
	takeEdges := func(pos token.Pos, held bool) {
		edges, ok := edgesAt[pos]
		if !ok {
			return
		}
		delete(edgesAt, pos)
		if !held {
			eff.calls = append(eff.calls, edges...)
		}
	}
	visitLocked(pkg, d.Decl.Body.List, 0, func(n ast.Node, held bool) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if held {
				return
			}
			for _, lhs := range n.Lhs {
				if w := g.sharedWriteTo(pkg, fn, lhs); w != nil {
					eff.writes = append(eff.writes, *w)
				}
			}
		case *ast.IncDecStmt:
			if held {
				return
			}
			if w := g.sharedWriteTo(pkg, fn, n.X); w != nil {
				eff.writes = append(eff.writes, *w)
			}
		case *ast.CallExpr:
			takeEdges(n.Pos(), held)
			if u, ok := unresAt[n.Pos()]; ok && !held {
				eff.unresolved = append(eff.unresolved, u)
			}
		case *ast.SelectorExpr, *ast.Ident:
			// Function references (EdgeRef) escaping at this point.
			takeEdges(n.(ast.Expr).Pos(), held)
		}
	})
	return eff
}

// sharedWriteTo reports the write when lhs stores into shared state, nil
// for local writes. fn is the function whose locals are "private".
func (g *CallGraph) sharedWriteTo(pkg *Package, fn *types.Func, lhs ast.Expr) *sharedWrite {
	root := rootIdent(lhs)
	if root == nil {
		// *p = v with a non-ident base, or a call result: treat a
		// dereference store as shared, anything else as untrackable.
		if star, ok := ast.Unparen(lhs).(*ast.StarExpr); ok {
			return &sharedWrite{pos: star.Pos(), desc: "memory behind a dereferenced pointer"}
		}
		return nil
	}
	obj, _ := pkg.Info.Uses[root].(*types.Var)
	if obj == nil {
		if def, ok := pkg.Info.Defs[root].(*types.Var); ok {
			obj = def
		}
	}
	if obj == nil {
		return nil
	}
	sig, _ := fn.Type().(*types.Signature)
	switch {
	case isPkgLevel(obj):
		return &sharedWrite{pos: lhs.Pos(), desc: "package variable " + obj.Name()}
	case sig != nil && sig.Recv() != nil && obj == sig.Recv():
		if _, isSel := ast.Unparen(lhs).(*ast.Ident); isSel {
			return nil // rebinding the receiver ident itself is local
		}
		return &sharedWrite{pos: lhs.Pos(), desc: "receiver state " + renderLHS(lhs), suppressible: true}
	case isParamOf(sig, obj) && isPointer(obj.Type()) && !rootOnlyIdent(lhs):
		return &sharedWrite{pos: lhs.Pos(), desc: "state behind pointer parameter " + obj.Name(), suppressible: true}
	}
	return nil
}

// rootIdent finds the base identifier of an lvalue or receiver
// expression (x, x.f, x[i], x.f[i].g, *x, &x → x).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		case *ast.UnaryExpr:
			if v.Op != token.AND {
				return nil
			}
			e = v.X
		default:
			return nil
		}
	}
}

// rootOnlyIdent reports whether the lvalue is just the bare identifier
// (rebinding a parameter locally, not writing through it).
func rootOnlyIdent(e ast.Expr) bool {
	_, ok := ast.Unparen(e).(*ast.Ident)
	return ok
}

// renderLHS prints a compact lvalue for diagnostics.
func renderLHS(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return renderLHS(v.X) + "." + v.Sel.Name
	case *ast.IndexExpr:
		return renderLHS(v.X) + "[...]"
	case *ast.StarExpr:
		return "*" + renderLHS(v.X)
	}
	return "?"
}

// isParamOf reports whether obj is one of the signature's parameters.
func isParamOf(sig *types.Signature, obj *types.Var) bool {
	if sig == nil {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return true
		}
	}
	return false
}

// isPointer reports whether t is a pointer type.
func isPointer(t types.Type) bool {
	_, ok := t.Underlying().(*types.Pointer)
	return ok
}

// reachSharedWrite searches breadth-first from start (inclusive),
// following only calls made without a lock held, for an unguarded shared
// write or an unresolved dynamic call — a callee locking around its own
// writes (or around its own calls) terminates the search down that arm.
//
// The owned flag threads RacerD-style ownership through the chain: when
// the calling context created the object a method runs on (startOwned, or
// a recvLocal edge along the way), receiver- and pointer-parameter-rooted
// writes in that method are private and skipped; package-variable writes
// and unresolved calls count regardless. A recvShared edge resets
// ownership, a recvParam edge inherits it. The returned path runs
// start..offender.
func (g *CallGraph) reachSharedWrite(start *types.Func, startOwned bool) ([]*types.Func, *Fact) {
	type key struct {
		fn    *types.Func
		owned bool
	}
	type item struct {
		fn    *types.Func
		owned bool
		prev  *item
	}
	expand := func(it *item) []*types.Func {
		var path []*types.Func
		for ; it != nil; it = it.prev {
			path = append([]*types.Func{it.fn}, path...)
		}
		return path
	}
	seen := map[key]bool{{start, startOwned}: true}
	queue := []*item{{fn: start, owned: startOwned}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		eff := g.effectsOf(it.fn)
		for _, w := range eff.writes {
			if it.owned && w.suppressible {
				continue
			}
			return expand(it), &Fact{Pos: w.pos, Desc: w.desc}
		}
		if len(eff.unresolved) > 0 {
			u := eff.unresolved[0]
			return expand(it), &Fact{Pos: u.Pos, Desc: "an unresolved dynamic call (" + u.Desc + ")"}
		}
		for _, e := range eff.calls {
			next := it.owned
			switch e.Recv {
			case recvLocal:
				next = true
			case recvShared:
				next = false
			}
			k := key{e.Callee, next}
			if !seen[k] {
				seen[k] = true
				queue = append(queue, &item{fn: e.Callee, owned: next, prev: it})
			}
		}
	}
	return nil, nil
}
