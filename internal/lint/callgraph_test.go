package lint

import (
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"go/types"
)

// loadCallgraphFixture loads the callgraph testdata package and builds
// its graph.
func loadCallgraphFixture(t *testing.T) (*Program, *Package, *CallGraph) {
	t.Helper()
	dir := filepath.Join("testdata", "src", "callgraph")
	prog, targets, err := Load(dir, []string{"."})
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	return prog, targets[0].Pkg, prog.CallGraph()
}

// fixtureFunc resolves a package function or Type.Method name.
func fixtureFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	scope := pkg.Types.Scope()
	if typeName, method, ok := strings.Cut(name, "."); ok {
		tn, _ := scope.Lookup(typeName).(*types.TypeName)
		if tn == nil {
			t.Fatalf("no type %s in fixture", typeName)
		}
		named := tn.Type().(*types.Named)
		for i := 0; i < named.NumMethods(); i++ {
			if named.Method(i).Name() == method {
				return named.Method(i)
			}
		}
		t.Fatalf("no method %s on %s", method, typeName)
	}
	fn, _ := scope.Lookup(name).(*types.Func)
	if fn == nil {
		t.Fatalf("no function %s in fixture", name)
	}
	return fn
}

// edgeSet renders a node's outgoing edges as sorted "kind callee"
// strings.
func edgeSet(g *CallGraph, fn *types.Func) []string {
	node := g.Nodes[fn]
	if node == nil {
		return nil
	}
	var out []string
	for _, e := range node.Out {
		out = append(out, fmt.Sprintf("%s %s", e.Kind, shortFuncName(e.Callee)))
	}
	sort.Strings(out)
	return out
}

// TestCallGraphEdges asserts the exact edge set for every interesting
// shape in the fixture: bounded interface dispatch, static calls,
// function references, method values, and mutual recursion.
func TestCallGraphEdges(t *testing.T) {
	_, pkg, g := loadCallgraphFixture(t)
	cases := []struct {
		fn   string
		want []string
	}{
		{"Chorus", []string{"dynamic callgraph.Cat.Speak", "dynamic callgraph.Dog.Speak"}},
		{"Spook", nil},
		{"Even", []string{"static callgraph.Odd"}},
		{"Odd", []string{"static callgraph.Even"}},
		{"PassRef", []string{"ref callgraph.Leaf", "static callgraph.Apply"}},
		{"Apply", nil}, // the call through f carries no edge; the bind site does
		{"MethodValue", []string{"ref callgraph.Dog.Speak"}},
		{"Leaf", nil},
	}
	for _, c := range cases {
		got := edgeSet(g, fixtureFunc(t, pkg, c.fn))
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s edges = %v, want %v", c.fn, got, c.want)
		}
	}
}

// TestCallGraphUnresolved: a dispatch through an interface nothing in
// the module implements is recorded as unresolved, not dropped.
func TestCallGraphUnresolved(t *testing.T) {
	_, pkg, g := loadCallgraphFixture(t)
	spook := g.Nodes[fixtureFunc(t, pkg, "Spook")]
	if spook == nil || len(spook.Unresolved) != 1 {
		t.Fatalf("Spook should carry exactly one unresolved call, got %+v", spook)
	}
	if want := "no in-module implementation of Ghost.Boo"; spook.Unresolved[0].Desc != want {
		t.Errorf("unresolved desc = %q, want %q", spook.Unresolved[0].Desc, want)
	}
	chorus := g.Nodes[fixtureFunc(t, pkg, "Chorus")]
	if chorus == nil || len(chorus.Unresolved) != 0 {
		t.Errorf("Chorus dispatch is bounded; unresolved = %+v", chorus)
	}
}

// TestConservativeDefaultFires: the unresolved call must surface as a
// conservative assume-impure diagnostic when an analyzer that leans on
// the graph runs over the fixture.
func TestConservativeDefaultFires(t *testing.T) {
	dir := filepath.Join("testdata", "src", "callgraph")
	diags, err := Vet(dir, []string{"."}, []*Analyzer{Determinism})
	if err != nil {
		t.Fatalf("Vet(callgraph): %v", err)
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "unresolvable") && strings.Contains(d.Message, "Ghost.Boo") {
			found = true
		} else {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if !found {
		t.Error("unresolved dispatch did not produce the conservative assume-nondeterministic diagnostic")
	}
}

// TestReachFactTerminates: searches over the mutually recursive pair
// must terminate and find nothing.
func TestReachFactTerminates(t *testing.T) {
	_, pkg, g := loadCallgraphFixture(t)
	even := fixtureFunc(t, pkg, "Even")
	if path, fact := g.reachFact(even, func(*types.Func) *Fact { return nil }, false); fact != nil {
		t.Errorf("no base facts, but reachFact found %v via %v", fact, path)
	}
	if path, fact := g.reachSharedWrite(even, false); fact != nil {
		t.Errorf("no shared writes, but reachSharedWrite found %v via %v", fact, path)
	}
}
