package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder proves deadlock-freedom of the serving stack's mutex
// discipline: it builds the module-global acquired-while-holding graph —
// an edge A -> B whenever some execution path acquires lock B while A is
// held, lexically or inherited through call-graph edges — and reports
// every cycle with a witness acquisition path per edge. The graph ranges
// over identified lock objects (package-level mutexes and struct-field
// mutexes keyed by type, so reuse.Store.mu is one lock no matter how
// many stores exist); a re-acquisition of the same lock object is
// reported directly as a self-deadlock unless both holds are read
// acquisitions. The analysis is may-hold: a single diagnostic means at
// least one static path orders the two locks that way, and a cycle
// means two such paths compose into a deadlock the scheduler can hit.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "build the acquired-while-holding graph over identified mutexes and report lock-order cycles with witness paths",
	Run:  runLockOrder,
}

// lockEdge is one acquired-while-holding edge with its first witness.
type lockEdge struct {
	from, to string
	witness  string    // rendered acquisition clause for diagnostics
	pos      token.Pos // the acquisition site
	fn       *types.Func
}

// lockCycle is one cycle of the lock-order graph, anchored at the
// acquisition site of its lexicographically smallest edge.
type lockCycle struct {
	pkg     *Package
	pos     token.Pos
	message string
}

func runLockOrder(pass *Pass) {
	g := pass.Prog.CallGraph()
	for _, c := range g.lockOrderCycles() {
		if c.pkg == pass.Pkg {
			pass.Reportf(c.pos, "%s", c.message)
		}
	}
	// Self-deadlocks (re-acquiring a lock already held) are reported at
	// the re-acquisition, in the package that contains it.
	for _, fn := range g.sortedFuncs() {
		d := g.Decls[fn]
		if d.Pkg != pass.Pkg {
			continue
		}
		entry := g.entryHeld()
		for _, acq := range g.lockFactsOf(fn).Acquires {
			if acq.Key.ID == "" {
				continue
			}
			for _, h := range heldBefore(g, entry, fn, acq) {
				if h.key.ID != acq.Key.ID || (h.key.Read && acq.Key.Read) {
					continue
				}
				pass.Reportf(acq.Pos, "%s acquired while already held: %s",
					acq.Key.ID, renderWitness(g, fn, acq.Pos, h))
				break
			}
		}
	}
}

// heldSource is one lock held before an acquisition: either taken
// lexically earlier in the same function (lexPos set) or inherited from
// a caller chain (chain set).
type heldSource struct {
	key    lockKey
	lexPos token.Pos
	chain  []*types.Func
}

// heldBefore lists the identified locks held at the acquisition site:
// the lexical holds recorded with the acquire, plus everything the
// function may be entered with. Lexical holds win on ID collision (the
// nearer witness).
func heldBefore(g *CallGraph, entry map[*types.Func]map[string]heldVia, fn *types.Func, acq lockAcquire) []heldSource {
	var out []heldSource
	seen := make(map[string]bool)
	for _, h := range acq.Held {
		if h.Key.ID == "" || seen[h.Key.ID] {
			continue
		}
		seen[h.Key.ID] = true
		out = append(out, heldSource{key: h.Key, lexPos: h.Pos})
	}
	ids := make([]string, 0, len(entry[fn]))
	for id := range entry[fn] {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		out = append(out, heldSource{key: entry[fn][id].Key, chain: g.entryChain(entry, fn, id)})
	}
	return out
}

// renderWitness prints one acquisition clause: who acquires what where,
// and how the conflicting lock came to be held.
func renderWitness(g *CallGraph, fn *types.Func, acqPos token.Pos, h heldSource) string {
	var how string
	if h.lexPos.IsValid() {
		how = fmt.Sprintf("locked at %s", g.posStr(h.lexPos))
	} else {
		how = fmt.Sprintf("held on entry via %s", pathString(h.chain))
	}
	return fmt.Sprintf("%s at %s while holding %s (%s)", shortFuncName(fn), g.posStr(acqPos), h.key.ID, how)
}

// posStr renders a position as base-filename:line for diagnostics.
func (g *CallGraph) posStr(pos token.Pos) string {
	p := g.prog.Fset.Position(pos)
	file := p.Filename
	if i := strings.LastIndexByte(file, '/'); i >= 0 {
		file = file[i+1:]
	}
	return fmt.Sprintf("%s:%d", file, p.Line)
}

// lockOrderCycles builds (and caches) the global acquired-while-holding
// graph and extracts its cycles, each with one witness per edge.
func (g *CallGraph) lockOrderCycles() []lockCycle {
	if g.prog.lockCyclesOnce {
		return g.prog.lockCycles
	}
	g.prog.lockCyclesOnce = true

	// First-witness-wins edge map over deterministic iteration.
	entry := g.entryHeld()
	edges := make(map[[2]string]*lockEdge)
	for _, fn := range g.sortedFuncs() {
		for _, acq := range g.lockFactsOf(fn).Acquires {
			if acq.Key.ID == "" {
				continue
			}
			for _, h := range heldBefore(g, entry, fn, acq) {
				if h.key.ID == acq.Key.ID {
					continue // self-deadlock, reported separately
				}
				k := [2]string{h.key.ID, acq.Key.ID}
				if _, ok := edges[k]; ok {
					continue
				}
				edges[k] = &lockEdge{
					from:    h.key.ID,
					to:      acq.Key.ID,
					witness: renderWitness(g, fn, acq.Pos, h),
					pos:     acq.Pos,
					fn:      fn,
				}
			}
		}
	}

	// Adjacency in sorted order, so BFS finds a deterministic shortest
	// return path for each candidate edge.
	adj := make(map[string][]string)
	for k := range edges {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	for _, succ := range adj {
		sort.Strings(succ)
	}
	keys := make([][2]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, k int) bool {
		if keys[i][0] != keys[k][0] {
			return keys[i][0] < keys[k][0]
		}
		return keys[i][1] < keys[k][1]
	})

	var cycles []lockCycle
	seen := make(map[string]bool) // canonical node-set key
	for _, k := range keys {
		ret := shortestLockPath(adj, k[1], k[0])
		if ret == nil {
			continue
		}
		// The cycle's node sequence: from -> to -> ... -> from.
		nodes := append([]string{k[0]}, ret...)
		canon := append([]string(nil), nodes[:len(nodes)-1]...)
		sort.Strings(canon)
		ck := strings.Join(canon, "\x00")
		if seen[ck] {
			continue
		}
		seen[ck] = true
		var witnesses []string
		anchor := edges[k]
		for i := 0; i+1 < len(nodes); i++ {
			e := edges[[2]string{nodes[i], nodes[i+1]}]
			witnesses = append(witnesses, fmt.Sprintf("witness %d: %s", i+1, e.witness))
		}
		msg := fmt.Sprintf("lock-order cycle %s: %s; break the cycle by acquiring these locks in one global order",
			strings.Join(nodes, " -> "), strings.Join(witnesses, "; "))
		cycles = append(cycles, lockCycle{
			pkg:     g.Decls[anchor.fn].Pkg,
			pos:     anchor.pos,
			message: msg,
		})
	}
	sort.Slice(cycles, func(i, k int) bool { return cycles[i].pos < cycles[k].pos })
	g.prog.lockCycles = cycles
	return cycles
}

// shortestLockPath returns the node sequence from..to (both included)
// over the lock-order graph, nil when unreachable.
func shortestLockPath(adj map[string][]string, from, to string) []string {
	type item struct {
		node string
		prev *item
	}
	seen := map[string]bool{from: true}
	queue := []*item{{node: from}}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		if it.node == to {
			var path []string
			for ; it != nil; it = it.prev {
				path = append([]string{it.node}, path...)
			}
			return path
		}
		for _, next := range adj[it.node] {
			if !seen[next] {
				seen[next] = true
				queue = append(queue, &item{node: next, prev: it})
			}
		}
	}
	return nil
}
