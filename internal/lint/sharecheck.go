package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShareCheck enforces PR 4's slot-write discipline inside parallel task
// bodies: a closure handed to forEachTask (or spawned with go) runs
// concurrently with its siblings, so a write to anything it captured is
// a race unless one of the sanctioned patterns applies —
//
//   - the write lands in the task's own slot of a pre-sized slice,
//     indexed by the closure's task-index parameter (slots[i] = ...);
//   - a mutex is held on every path to the write;
//   - the operation goes through sync/atomic.
//
// The check is interprocedural: a helper the task body calls is searched
// (through the call graph, ownership-aware) for unguarded shared writes,
// and a dynamic call the graph cannot bound to an in-module
// implementation is conservatively assumed to write shared state.
var ShareCheck = &Analyzer{
	Name: "sharecheck",
	Doc:  "flag unguarded writes to captured state inside forEachTask closures and go-spawned bodies",
	Packages: []string{
		"internal/mapreduce",
		"internal/cmf",
		"internal/difftest",
	},
	Run: runShareCheck,
}

func runShareCheck(pass *Pass) {
	g := pass.Prog.CallGraph()
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					if calleeName(n) != "forEachTask" || len(n.Args) == 0 {
						return true
					}
					lit, indexObj := taskBody(pass.Pkg, fd, n)
					if lit == nil {
						pass.Reportf(n.Args[len(n.Args)-1].Pos(),
							"task body passed to forEachTask is not statically visible; assume-shared — pass a function literal or a locally bound one")
						return true
					}
					checkTaskRegion(pass, g, fn, fd, lit, indexObj)
				case *ast.GoStmt:
					if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
						checkTaskRegion(pass, g, fn, fd, lit, nil)
					} else {
						checkRegionCallees(pass, g, fn, fd, n.Call.Pos(), n.Call.End())
					}
				}
				return true
			})
		}
	}
}

// taskBody resolves the task closure of a forEachTask call: a function
// literal argument directly, or an identifier bound to one earlier in
// the enclosing function. The second result is the closure's task-index
// parameter object (nil when the closure declares none).
func taskBody(pkg *Package, fd *ast.FuncDecl, call *ast.CallExpr) (*ast.FuncLit, types.Object) {
	arg := ast.Unparen(call.Args[len(call.Args)-1])
	lit, ok := arg.(*ast.FuncLit)
	if !ok {
		id, isIdent := arg.(*ast.Ident)
		if !isIdent {
			return nil, nil
		}
		obj := pkg.Info.Uses[id]
		if obj == nil {
			return nil, nil
		}
		lit = boundFuncLit(pkg, fd, obj)
		if lit == nil {
			return nil, nil
		}
	}
	return lit, taskIndexParam(pkg, lit)
}

// boundFuncLit finds the function literal a local variable was assigned
// (replay := func(i int) error { ... }); the last binding in source
// order wins.
func boundFuncLit(pkg *Package, fd *ast.FuncDecl, obj types.Object) *ast.FuncLit {
	var lit *ast.FuncLit
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lh := range as.Lhs {
			id, ok := lh.(*ast.Ident)
			if !ok {
				continue
			}
			if pkg.Info.Defs[id] != obj && pkg.Info.Uses[id] != obj {
				continue
			}
			if l, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
				lit = l
			}
		}
		return true
	})
	return lit
}

// taskIndexParam returns the object of the closure's first parameter —
// the task index under the forEachTask convention — or nil.
func taskIndexParam(pkg *Package, lit *ast.FuncLit) types.Object {
	params := lit.Type.Params
	if params == nil || len(params.List) == 0 || len(params.List[0].Names) == 0 {
		return nil
	}
	return pkg.Info.Defs[params.List[0].Names[0]]
}

// checkTaskRegion vets one parallel task body. Lock state starts at zero
// — the closure runs on its own goroutine regardless of what the spawner
// held — and nested literals (emit callbacks and the like) are part of
// the region.
func checkTaskRegion(pass *Pass, g *CallGraph, fn *types.Func, fd *ast.FuncDecl, lit *ast.FuncLit, indexObj types.Object) {
	pkg := pass.Pkg
	reported := make(map[token.Pos]bool)
	checkWrite := func(lhs ast.Expr) {
		if w := capturedWrite(pkg, fd, lit, indexObj, lhs); w != "" && !reported[lhs.Pos()] {
			reported[lhs.Pos()] = true
			pass.Reportf(lhs.Pos(),
				"unguarded write to %s inside a parallel task body; write into a per-task slot indexed by the task index, hold a mutex, or use sync/atomic", w)
		}
	}
	visitLocked(pkg, lit.Body.List, 0, func(n ast.Node, held bool) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if held {
				return
			}
			for _, lhs := range n.Lhs {
				checkWrite(lhs)
			}
		case *ast.IncDecStmt:
			if !held {
				checkWrite(n.X)
			}
		case *ast.CallExpr:
			if !held {
				checkCallSite(pass, g, fn, fd, lit, n, reported)
			}
		case *ast.SelectorExpr:
			if !held {
				checkRefSite(pass, g, fn, n.Pos(), reported)
			}
		case *ast.Ident:
			if !held {
				checkRefSite(pass, g, fn, n.Pos(), reported)
			}
		}
	})
}

// capturedWrite classifies the lvalue of a write inside a task body and
// names the shared state it hits ("" when the write is safe): locals
// declared inside the closure are private, slot writes indexed by the
// task-index parameter are the sanctioned output pattern, and everything
// else captured is shared.
func capturedWrite(pkg *Package, fd *ast.FuncDecl, lit *ast.FuncLit, indexObj types.Object, lhs ast.Expr) string {
	root := rootIdent(lhs)
	if root == nil {
		if _, ok := ast.Unparen(lhs).(*ast.StarExpr); ok {
			return "memory behind a dereferenced pointer"
		}
		return ""
	}
	if root.Name == "_" {
		return ""
	}
	obj := pkg.Info.Uses[root]
	if obj == nil {
		obj = pkg.Info.Defs[root]
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return ""
	}
	if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
		return "" // closure-local (or the closure's own parameter)
	}
	if indexObj != nil && slotIndexed(pkg, lhs, indexObj) {
		return "" // the task's own slot
	}
	if _, isStar := ast.Unparen(lhs).(*ast.StarExpr); isStar {
		return "memory behind captured pointer " + v.Name()
	}
	switch {
	case isPkgLevel(v):
		return "package variable " + v.Name()
	case isReceiverOf(pkg, fd, v):
		return "receiver state " + renderLHS(lhs)
	default:
		return "captured variable " + v.Name()
	}
}

// slotIndexed reports whether the lvalue's access path contains an index
// by the task-index parameter (errs[i], outs[i] = append(outs[i], ...),
// slots[i].field), the disjoint-write pattern forEachTask sanctions.
func slotIndexed(pkg *Package, lhs ast.Expr, indexObj types.Object) bool {
	for {
		switch v := ast.Unparen(lhs).(type) {
		case *ast.IndexExpr:
			if id, ok := ast.Unparen(v.Index).(*ast.Ident); ok && pkg.Info.Uses[id] == indexObj {
				return true
			}
			lhs = v.X
		case *ast.SelectorExpr:
			lhs = v.X
		case *ast.StarExpr:
			lhs = v.X
		default:
			return false
		}
	}
}

// isReceiverOf reports whether v is the receiver of the enclosing method.
func isReceiverOf(pkg *Package, fd *ast.FuncDecl, v *types.Var) bool {
	fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil && sig.Recv() == v
}

// checkCallSite reports helpers a task body calls that transitively
// write shared state without a lock, and dynamic calls the graph could
// not bound (assume-shared).
func checkCallSite(pass *Pass, g *CallGraph, fn *types.Func, fd *ast.FuncDecl, lit *ast.FuncLit, call *ast.CallExpr, reported map[token.Pos]bool) {
	node := g.Nodes[fn]
	if node == nil {
		return
	}
	pos := call.Pos()
	for _, u := range node.Unresolved {
		if u.Pos == pos && !reported[pos] {
			reported[pos] = true
			pass.Reportf(pos,
				"parallel task body makes an unresolvable dynamic call (%s); assume-shared — bound it to an in-module implementation or annotate the site", u.Desc)
		}
	}
	for _, e := range node.Out {
		if e.Pos != pos || e.Kind == EdgeRef {
			continue
		}
		if reported[pos] {
			return
		}
		owned := false
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if root := rootIdent(sel.X); root != nil {
				if v, ok := pass.Pkg.Info.Uses[root].(*types.Var); ok &&
					v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
					owned = true // method on an object this task created
				}
			}
		}
		path, fact := g.reachSharedWrite(e.Callee, owned)
		if fact == nil {
			continue
		}
		reported[pos] = true
		pass.Reportf(pos,
			"parallel task body calls %s, which writes %s with no lock held (path %s); guard the shared state or keep task helpers pure",
			shortFuncName(e.Callee), fact.Desc, pathString(path))
	}
}

// checkRefSite applies the same search to function references escaping
// from a task body (handed to another goroutine or stored), attributed
// at the referencing expression.
func checkRefSite(pass *Pass, g *CallGraph, fn *types.Func, pos token.Pos, reported map[token.Pos]bool) {
	node := g.Nodes[fn]
	if node == nil {
		return
	}
	for _, e := range node.Out {
		if e.Pos != pos || e.Kind != EdgeRef || reported[pos] {
			continue
		}
		path, fact := g.reachSharedWrite(e.Callee, false)
		if fact == nil {
			continue
		}
		reported[pos] = true
		pass.Reportf(pos,
			"parallel task body hands off %s, which writes %s with no lock held (path %s); guard the shared state or keep task helpers pure",
			shortFuncName(e.Callee), fact.Desc, pathString(path))
	}
}

// checkRegionCallees vets the callees of a `go f(...)` statement whose
// body is a named function rather than a literal: every edge in the span
// is searched for unguarded shared writes.
func checkRegionCallees(pass *Pass, g *CallGraph, fn *types.Func, fd *ast.FuncDecl, from, to token.Pos) {
	node := g.Nodes[fn]
	if node == nil {
		return
	}
	reported := make(map[token.Pos]bool)
	for _, e := range node.Out {
		if e.Pos < from || e.Pos >= to || reported[e.Pos] {
			continue
		}
		path, fact := g.reachSharedWrite(e.Callee, false)
		if fact == nil {
			continue
		}
		reported[e.Pos] = true
		pass.Reportf(e.Pos,
			"goroutine body %s writes %s with no lock held (path %s); guard the shared state or keep spawned code pure",
			shortFuncName(e.Callee), fact.Desc, pathString(path))
	}
	for _, u := range node.Unresolved {
		if u.Pos < from || u.Pos >= to || reported[u.Pos] {
			continue
		}
		reported[u.Pos] = true
		pass.Reportf(u.Pos,
			"goroutine body makes an unresolvable dynamic call (%s); assume-shared — bound it to an in-module implementation or annotate the site", u.Desc)
	}
}
