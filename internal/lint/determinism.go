package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Determinism flags the three sources of hidden nondeterminism that
// break byte-identical replay in the simulator's data paths: wall-clock
// reads, the globally seeded math/rand functions, and map iteration
// that feeds an emission path unsorted. The scope is the packages whose
// outputs must reproduce exactly — the engine, the CMF, the shared data
// model, and the translator.
//
// The check is call-graph-transitive: a helper outside the replayed
// packages that (through any chain of in-module calls, function values
// handed off, or interface dispatch) reaches one of the three sources
// taints every replayed call site, and the diagnostic prints the
// offending call path. A chain that ends in a dynamic call the graph
// cannot bound to an in-module implementation is conservatively treated
// as nondeterministic too.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag time.Now, global math/rand, and unsorted map-range emission reachable from replayed packages",
	Packages: []string{
		"internal/mapreduce",
		"internal/cmf",
		"internal/exec",
		"internal/translator",
	},
	Run: runDeterminism,
}

// randConstructors are the package-level math/rand functions that build
// generators rather than draw from the global one; they are the
// *supported* way to get deterministic randomness and are never
// flagged.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(pass *Pass) {
	// Intraprocedural pass: sources written directly in this package.
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if msg, _ := nondetCall(pass.Pkg, n); msg != "" {
					pass.Reportf(n.Pos(), "%s", msg)
				}
			case *ast.RangeStmt:
				if msg, _ := nondetMapRange(pass.Pkg, file, n); msg != "" {
					pass.Reportf(n.Pos(), "%s", msg)
				}
			}
			return true
		})
	}

	// Interprocedural pass: calls (and function references) leaving the
	// replayed scope whose transitive closure reaches a source. Callees
	// inside the replayed scope are skipped — their own package run
	// reports the source directly.
	g := pass.Prog.CallGraph()
	for _, file := range pass.Pkg.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := g.Nodes[fn]
			if node == nil {
				continue
			}
			reported := make(map[token.Pos]bool) // one diagnostic per call site
			for _, e := range node.Out {
				if pass.analyzer.appliesTo(pass.Prog.relOf(e.Callee.Pkg())) {
					continue
				}
				if reported[e.Pos] {
					continue
				}
				path, fact := g.reachFact(e.Callee, pass.Prog.nondetFact, true)
				if fact == nil {
					continue
				}
				reported[e.Pos] = true
				verb := "call to"
				if e.Kind == EdgeRef {
					verb = "reference to"
				}
				pass.Reportf(e.Pos, "%s %s reaches %s via %s; nondeterminism must not be reachable from replayed code",
					verb, shortFuncName(e.Callee), fact.Desc, pathString(path))
			}
			// A dynamic call the graph could not bound is itself a
			// conservative finding: the callee may do anything.
			for _, u := range node.Unresolved {
				pass.Reportf(u.Pos, "dynamic call is unresolvable (%s); assume nondeterministic and keep it out of replayed code", u.Desc)
			}
		}
	}
}

// nondetFact returns the function's first directly-written
// nondeterminism source, building the whole-program fact table on first
// use. It is the base-fact callback for reachFact.
func (prog *Program) nondetFact(fn *types.Func) *Fact {
	if !prog.nondetOnce {
		prog.nondetOnce = true
		prog.nondet = make(map[*types.Func]*Fact)
		g := prog.CallGraph()
		for f, d := range g.Decls {
			if fact := nondetFactOf(d); fact != nil {
				prog.nondet[f] = fact
			}
		}
	}
	return prog.nondet[fn]
}

// nondetFactOf extracts the first nondeterminism source written directly
// in the function body (closures included), or nil.
func nondetFactOf(d declOf) *Fact {
	var fact *Fact
	ast.Inspect(d.Decl.Body, func(n ast.Node) bool {
		if fact != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if _, short := nondetCall(d.Pkg, n); short != "" {
				fact = &Fact{Pos: n.Pos(), Desc: short}
			}
		case *ast.RangeStmt:
			if _, short := nondetMapRange(d.Pkg, d.File, n); short != "" {
				fact = &Fact{Pos: n.Pos(), Desc: short}
			}
		}
		return true
	})
	return fact
}

// nondetCall classifies time.Now and global math/rand draws, returning
// the full diagnostic message and the short description used in call
// paths ("" when the call is clean).
func nondetCall(pkg *Package, call *ast.CallExpr) (msg, short string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return "", "" // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			return "time.Now reads the wall clock; use the simulated clock so runs replay byte-identically",
				"time.Now (wall clock)"
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			return fmt.Sprintf("rand.%s draws from the global generator; use a *rand.Rand seeded from the cluster/plan seed", fn.Name()),
				fmt.Sprintf("the global rand.%s", fn.Name())
		}
	case "sort":
		if fn.Name() == "Slice" || fn.Name() == "SliceStable" {
			return nondetSortComparator(pkg, fn.Name(), call)
		}
	}
	return "", ""
}

// nondetSortComparator audits a sort.Slice/SliceStable comparator literal
// for two less functions that break deterministic replay:
//
//   - float comparisons with no math.IsNaN handling: NaN compares false
//     against everything, so the "order" is not total and the sorted
//     output depends on the pivot sequence rather than the data;
//   - a single map-derived comparison with no tie-break: elements whose
//     map values collide keep whatever order the (randomized) map
//     iteration produced them in, and sort preserves that accident.
//
// A comparator that mentions math.IsNaN is taken as NaN-aware; a
// comparator combining several conditions (||, &&) is taken as carrying a
// tie-break for the map case.
func nondetSortComparator(pkg *Package, fnName string, call *ast.CallExpr) (msg, short string) {
	if len(call.Args) < 2 {
		return "", ""
	}
	lit, ok := call.Args[1].(*ast.FuncLit)
	if !ok {
		return "", ""
	}
	if floatCompare(pkg, lit.Body) && !mentionsIsNaN(pkg, lit.Body) {
		return fmt.Sprintf("sort.%s comparator orders floats without math.IsNaN handling; NaN breaks the total order, so guard it (or reject non-finite values upstream) to keep replay deterministic", fnName),
			"a NaN-unsafe float sort comparator"
	}
	if ret := soleComparison(lit.Body); ret != nil && mapDerived(pkg, ret) {
		return fmt.Sprintf("sort.%s comparator orders by map-derived values with no tie-break; elements with equal values keep the randomized map-iteration order, so add a secondary key", fnName),
			"a map-derived sort key without a tie-break"
	}
	return "", ""
}

// floatCompare reports whether the body contains an ordered comparison
// between float-typed operands.
func floatCompare(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.LSS, token.GTR, token.LEQ, token.GEQ:
		default:
			return true
		}
		if t := pkg.Info.Types[be.X].Type; t != nil {
			if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsFloat != 0 {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// mentionsIsNaN reports whether the body calls math.IsNaN (the sanctioned
// way to make a float comparator total).
func mentionsIsNaN(pkg *Package, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil &&
			fn.Pkg().Path() == "math" && fn.Name() == "IsNaN" {
			found = true
			return false
		}
		return true
	})
	return found
}

// soleComparison returns the comparison expression when the comparator body
// is a single `return a < b` (no tie-break chain), nil otherwise.
func soleComparison(body *ast.BlockStmt) *ast.BinaryExpr {
	if len(body.List) != 1 {
		return nil
	}
	ret, ok := body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return nil
	}
	be, ok := ret.Results[0].(*ast.BinaryExpr)
	if !ok {
		return nil
	}
	switch be.Op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ:
		return be
	}
	return nil
}

// mapDerived reports whether either side of the comparison indexes into a
// map (the sorted elements' order then hinges on values looked up per key).
func mapDerived(pkg *Package, be *ast.BinaryExpr) bool {
	derived := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if found {
				return false
			}
			ix, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			if t := pkg.Info.Types[ix.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	return derived(be.X) || derived(be.Y)
}

// nondetMapRange classifies `range m` over a map whose body emits (calls
// an emit/output/write function or appends to a result declared outside
// the loop) when the enclosing function does not sort afterward. Map
// iteration order is randomized per run, so such a loop makes the
// emission order — and therefore the simulated byte stream — differ
// between identical runs.
func nondetMapRange(pkg *Package, file *ast.File, rng *ast.RangeStmt) (msg, short string) {
	t := pkg.Info.Types[rng.X].Type
	if t == nil {
		return "", ""
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return "", ""
	}
	how := emissionIn(pkg, rng)
	if how == "" {
		return "", ""
	}
	if sortsAfter(pkg, file, rng) {
		return "", ""
	}
	return fmt.Sprintf("map iteration order feeds %s without a later sort; iterate sorted keys so emission order replays", how),
		"unsorted map-range emission"
}

// emissionIn scans the range body for an order-sensitive emission and
// describes the first one found ("" when none).
func emissionIn(pkg *Package, rng *ast.RangeStmt) string {
	var how string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if how != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			name := calleeName(n)
			lower := strings.ToLower(name)
			if strings.HasPrefix(lower, "emit") || strings.HasPrefix(lower, "output") ||
				strings.HasPrefix(lower, "write") {
				how = "a call to " + name
				return false
			}
			if name == "append" {
				if dest := appendTarget(pkg, n, rng); dest != "" {
					how = "an append to " + dest
					return false
				}
			}
		}
		return true
	})
	return how
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// appendTarget reports the name of the slice being grown when the
// append's first argument is a variable declared outside the range
// statement (an accumulating result), "" otherwise.
func appendTarget(pkg *Package, call *ast.CallExpr, rng *ast.RangeStmt) string {
	if len(call.Args) == 0 {
		return ""
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return ""
	}
	obj := pkg.Info.Uses[id]
	if obj == nil || obj.Pos() == 0 {
		return ""
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return "" // loop-local scratch
	}
	return id.Name
}

// sortsAfter reports whether the enclosing function calls into package
// sort lexically after the range statement — the collect-then-sort
// idiom that restores a deterministic order before anything escapes.
func sortsAfter(pkg *Package, file *ast.File, rng *ast.RangeStmt) bool {
	body := enclosingFuncBody(file, rng.Pos())
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "sort", "slices":
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
