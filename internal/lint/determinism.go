package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism flags the three sources of hidden nondeterminism that
// break byte-identical replay in the simulator's data paths: wall-clock
// reads, the globally seeded math/rand functions, and map iteration
// that feeds an emission path unsorted. The scope is the packages whose
// outputs must reproduce exactly — the engine, the CMF, the shared data
// model, and the translator.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flag time.Now, global math/rand, and unsorted map-range emission in replayed packages",
	Packages: []string{
		"internal/mapreduce",
		"internal/cmf",
		"internal/exec",
		"internal/translator",
	},
	Run: runDeterminism,
}

// randConstructors are the package-level math/rand functions that build
// generators rather than draw from the global one; they are the
// *supported* way to get deterministic randomness and are never
// flagged.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Pkg.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.RangeStmt:
				checkMapRangeEmission(pass, file, n)
			}
			return true
		})
	}
}

// checkDeterministicCall flags time.Now and global math/rand draws.
func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods (e.g. on a seeded *rand.Rand) are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" {
			pass.Reportf(call.Pos(),
				"time.Now reads the wall clock; use the simulated clock so runs replay byte-identically")
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[fn.Name()] {
			pass.Reportf(call.Pos(),
				"rand.%s draws from the global generator; use a *rand.Rand seeded from the cluster/plan seed", fn.Name())
		}
	}
}

// checkMapRangeEmission flags `range m` over a map whose body emits
// (calls an emit/output/write function or appends to a result declared
// outside the loop) when the enclosing function does not sort afterward.
// Map iteration order is randomized per run, so such a loop makes the
// emission order — and therefore the simulated byte stream — differ
// between identical runs.
func checkMapRangeEmission(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	t := pass.Pkg.Info.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	how := emissionIn(pass, rng)
	if how == "" {
		return
	}
	if sortsAfter(pass, file, rng) {
		return
	}
	pass.Reportf(rng.Pos(),
		"map iteration order feeds %s without a later sort; iterate sorted keys so emission order replays", how)
}

// emissionIn scans the range body for an order-sensitive emission and
// describes the first one found ("" when none).
func emissionIn(pass *Pass, rng *ast.RangeStmt) string {
	var how string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if how != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			name := calleeName(n)
			lower := strings.ToLower(name)
			if strings.HasPrefix(lower, "emit") || strings.HasPrefix(lower, "output") ||
				strings.HasPrefix(lower, "write") {
				how = "a call to " + name
				return false
			}
			if name == "append" {
				if dest := appendTarget(pass, n, rng); dest != "" {
					how = "an append to " + dest
					return false
				}
			}
		}
		return true
	})
	return how
}

// calleeName extracts the called function or method name.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

// appendTarget reports the name of the slice being grown when the
// append's first argument is a variable declared outside the range
// statement (an accumulating result), "" otherwise.
func appendTarget(pass *Pass, call *ast.CallExpr, rng *ast.RangeStmt) string {
	if len(call.Args) == 0 {
		return ""
	}
	id, ok := call.Args[0].(*ast.Ident)
	if !ok {
		return ""
	}
	obj := pass.Pkg.Info.Uses[id]
	if obj == nil || obj.Pos() == 0 {
		return ""
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return "" // loop-local scratch
	}
	return id.Name
}

// sortsAfter reports whether the enclosing function calls into package
// sort lexically after the range statement — the collect-then-sort
// idiom that restores a deterministic order before anything escapes.
func sortsAfter(pass *Pass, file *ast.File, rng *ast.RangeStmt) bool {
	body := enclosingFuncBody(file, rng.Pos())
	if body == nil {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil {
				switch fn.Pkg().Path() {
				case "sort", "slices":
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
