package lint

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"
)

// loadFactsPkg type-checks one synthetic single-file module, the
// fixture harness for the lexical lock-tracking edge cases.
func loadFactsPkg(t *testing.T, src string) (*Program, *Package) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module factstest\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "facts.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, targets, err := Load(dir, []string{"."})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(targets) != 1 {
		t.Fatalf("want 1 target, got %d", len(targets))
	}
	return prog, targets[0].Pkg
}

// heldAtProbe walks fname with the identified-lock walker and returns
// the lock IDs held at its probe() call ("" entries for unidentified
// locks). The bool reports whether probe was reached.
func heldAtProbe(t *testing.T, prog *Program, pkg *Package, fname string) ([]string, bool) {
	t.Helper()
	g := prog.CallGraph()
	wraps := g.lockWrappers()
	var fd *ast.FuncDecl
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if d, ok := decl.(*ast.FuncDecl); ok && d.Name.Name == fname {
				fd = d
			}
		}
	}
	if fd == nil {
		t.Fatalf("no function %s in fixture", fname)
	}
	var ids []string
	found := false
	visitHeld(pkg, wraps, fd.Body.List, &heldLocks{}, func(n ast.Node, held *heldLocks) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "probe" {
			found = true
			ids = nil
			for _, h := range held.locks {
				ids = append(ids, h.Key.ID)
			}
		}
	})
	return ids, found
}

// TestConditionalDeferUnlock: a defer mu.Unlock() inside a conditional
// branch must not release the lock for the code after the join — the
// deferred release runs at function end, and branch-local lock-state
// changes never survive the join.
func TestConditionalDeferUnlock(t *testing.T) {
	prog, pkg := loadFactsPkg(t, `package factstest

import "sync"

var gmu sync.Mutex

func probe() {}

func condDefer(cond bool) {
	gmu.Lock()
	if cond {
		defer gmu.Unlock()
	}
	probe()
}
`)
	ids, found := heldAtProbe(t, prog, pkg, "condDefer")
	if !found {
		t.Fatal("probe() not visited")
	}
	if len(ids) != 1 || ids[0] != "factstest.gmu" {
		t.Fatalf("want factstest.gmu held at probe (deferred unlock must not release), got %v", ids)
	}
}

// TestRLockPairing: RUnlock must release only a read hold. A write
// Lock mispaired with RUnlock stays held; a proper RLock/RUnlock pair
// releases.
func TestRLockPairing(t *testing.T) {
	prog, pkg := loadFactsPkg(t, `package factstest

import "sync"

var rw sync.RWMutex

func probe() {}

func mispaired() {
	rw.Lock()
	rw.RUnlock()
	probe()
	rw.Unlock()
}

func paired() {
	rw.RLock()
	rw.RUnlock()
	probe()
}
`)
	ids, found := heldAtProbe(t, prog, pkg, "mispaired")
	if !found {
		t.Fatal("probe() not visited in mispaired")
	}
	if len(ids) != 1 || ids[0] != "factstest.rw" {
		t.Fatalf("RUnlock must not release a write Lock: want factstest.rw still held, got %v", ids)
	}
	ids, found = heldAtProbe(t, prog, pkg, "paired")
	if !found {
		t.Fatal("probe() not visited in paired")
	}
	if len(ids) != 0 {
		t.Fatalf("RLock/RUnlock pair must release: got %v", ids)
	}
}

// TestLockWrapperOneHop: a helper that locks a *sync.Mutex parameter
// makes its call sites acquisition sites of the argument's lock — one
// hop of pointer-passing is resolved, both for the hold set and for the
// per-function acquisition facts.
func TestLockWrapperOneHop(t *testing.T) {
	prog, pkg := loadFactsPkg(t, `package factstest

import "sync"

var wmu sync.Mutex

func probe() {}

func lockIt(m *sync.Mutex)   { m.Lock() }
func unlockIt(m *sync.Mutex) { m.Unlock() }

func viaWrapper() {
	lockIt(&wmu)
	probe()
	unlockIt(&wmu)
}
`)
	ids, found := heldAtProbe(t, prog, pkg, "viaWrapper")
	if !found {
		t.Fatal("probe() not visited")
	}
	if len(ids) != 1 || ids[0] != "factstest.wmu" {
		t.Fatalf("wrapper-held lock missing: want factstest.wmu at probe, got %v", ids)
	}

	g := prog.CallGraph()
	for fn := range g.Decls {
		if fn.Name() != "viaWrapper" {
			continue
		}
		lf := g.lockFactsOf(fn)
		if len(lf.Acquires) != 1 || lf.Acquires[0].Key.ID != "factstest.wmu" {
			t.Fatalf("viaWrapper must record one wrapper-resolved acquisition of factstest.wmu, got %+v", lf.Acquires)
		}
	}
}
