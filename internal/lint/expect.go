package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// wantRx matches a golden-corpus expectation comment: the diagnostic's
// message on that line must match the quoted regexp.
var wantRx = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// CheckCorpus runs the analyzers over the corpus package in dir and
// compares the diagnostics against the corpus's `// want "regexp"`
// comments: every diagnostic must be expected by a want on its line,
// and every want must be matched by a diagnostic. It returns one
// mismatch per line, empty when the corpus is green.
//
// The corpus files are loaded through the same module-aware driver the
// CLI uses, so they may import ysmart packages; analyzer package scopes
// are bypassed, exactly as `ysmart-vet <dir>` bypasses them.
func CheckCorpus(dir string, analyzers []*Analyzer) ([]string, error) {
	prog, targets, err := Load(dir, []string{"."})
	if err != nil {
		return nil, err
	}
	pkg := targets[0].Pkg
	var diags []Diagnostic
	for _, a := range analyzers {
		diags = append(diags, runOne(prog, pkg, a, nil)...)
	}
	wants := corpusWants(prog.Fset, pkg)

	var problems []string
	matched := make(map[string]bool)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		want, ok := wants[key]
		if !ok {
			problems = append(problems, fmt.Sprintf("unexpected diagnostic: %s", d))
			continue
		}
		rx, err := regexp.Compile(want)
		if err != nil {
			return nil, fmt.Errorf("bad want regexp at %s: %v", key, err)
		}
		if !rx.MatchString(d.Message) {
			problems = append(problems, fmt.Sprintf("diagnostic %q does not match want %q at %s", d.Message, want, key))
			continue
		}
		matched[key] = true
	}
	for key, want := range wants {
		if !matched[key] {
			problems = append(problems, fmt.Sprintf("missing diagnostic: want %q at %s", want, key))
		}
	}
	sort.Strings(problems)
	return problems, nil
}

// corpusWants maps "file:line" to the expected-message regexp.
func corpusWants(fset *token.FileSet, pkg *Package) map[string]string {
	wants := make(map[string]string)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				// The quoted regexp may contain escaped quotes.
				want := strings.ReplaceAll(m[1], `\"`, `"`)
				wants[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)] = want
			}
		}
	}
	return wants
}
