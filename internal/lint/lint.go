// Package lint is ysmart's project-specific static-analysis suite: a
// small go/parser + go/types analyzer framework (stdlib only, no
// golang.org/x/tools dependency) plus the analyzers behind the
// `ysmart-vet` CI gate. The analyzers machine-check invariants the Go
// compiler cannot see but replay and CMF correctness depend on:
//
//   - determinism: no wall-clock reads, no unseeded global math/rand,
//     no map-iteration-ordered emission in the simulator's data paths —
//     including through any chain of in-module helper calls, resolved
//     over the module call graph (callgraph.go, facts.go);
//   - tagdispatch: a CommonJob built from literals must write only ops
//     it evaluates, with distinct tags, and every would-be cmf.Op type
//     must implement the full Name/Sources/Eval triple;
//   - spanpair: every obs.Begin span must be Ended on every return path
//     of its function;
//   - deprecated: no new uses of identifiers documented "Deprecated:";
//   - sharecheck: closures run concurrently by forEachTask (or spawned
//     with go) may write captured state only into a task-index slot,
//     under a mutex, or atomically — helpers included;
//   - concreduce: types carrying the ConcurrentReduce marker must fold
//     shared state under their mutex and never copy it;
//   - lockorder: the module-global acquired-while-holding graph over
//     identified mutexes (package globals, struct fields keyed by type)
//     must be acyclic; cycles are reported with a witness acquisition
//     path per edge (lockset.go);
//   - goleak: every go statement must reach a provable exit — a spawn
//     whose body (directly or through calls) loops forever with no
//     return, break, or goto is reported at the spawn site;
//   - lockheld: no blocking operation (channel send/receive without a
//     default, select without default, Wait, time.Sleep, network I/O)
//     may be reachable while a mutex is held.
//
// A diagnostic on a deliberate exception is silenced with a trailing or
// preceding `// lint:ignore <check> reason` comment. The driver audits
// the directives themselves: one that silences zero diagnostics (while
// every check it names has run) is reported as `staleignore`, so dead
// suppressions cannot linger after the code they excused is gone.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzers is the full ysmart-vet suite in stable order.
var Analyzers = []*Analyzer{Determinism, TagDispatch, SpanPair, Deprecated, ShareCheck, ConcReduce, LockOrder, GoLeak, LockHeld}

// StaleIgnoreCheck is the name the driver's suppression audit reports
// under. It is not an Analyzer: the driver itself emits it after all
// selected analyzers ran over a package.
const StaleIgnoreCheck = "staleignore"

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	// Name is the check's identifier, used in diagnostics, -check
	// selection, and lint:ignore directives.
	Name string
	// Doc is a one-line description shown by `ysmart-vet -list`.
	Doc string
	// Packages restricts the analyzer to module packages whose
	// module-relative import path starts with one of these prefixes. An
	// empty list applies the analyzer to every package. Explicitly named
	// package arguments (as opposed to ./... expansion) bypass the
	// restriction, which is how the testdata corpora are vetted.
	Packages []string
	// Run inspects pass.Pkg and reports findings through pass.Reportf.
	Run func(pass *Pass)
}

// appliesTo reports whether the analyzer's package scope covers the
// module-relative package path rel.
func (a *Analyzer) appliesTo(rel string) bool {
	if len(a.Packages) == 0 {
		return true
	}
	for _, p := range a.Packages {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// Diagnostic is one finding at a position.
type Diagnostic struct {
	Pos     token.Position
	Check   string
	Message string
}

// String renders the diagnostic in the file:line:col form CI consumes.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Check, d.Message)
}

// Pass is one analyzer's view of one package under analysis.
type Pass struct {
	// Prog is the loaded program, giving cross-package context (the
	// deprecated analyzer scans every module package for Deprecated:
	// declarations regardless of which package it is vetting).
	Prog *Program
	// Pkg is the package under analysis.
	Pkg      *Package
	analyzer *Analyzer
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:     p.Prog.Fset.Position(pos),
		Check:   p.analyzer.Name,
		Message: fmt.Sprintf(format, args...),
	})
}

// Vet runs the analyzers over the packages matched by patterns (./...
// or explicit directory paths) under the module rooted at or above dir.
// Diagnostics silenced by lint:ignore directives are dropped; the rest
// come back sorted by position.
func Vet(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	prog, targets, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	var diags []Diagnostic
	for _, t := range targets {
		ig := ignoresOf(prog.Fset, t.Pkg)
		ran := make(map[string]bool)
		for _, a := range analyzers {
			if !t.Explicit && !a.appliesTo(t.Pkg.Rel) {
				continue
			}
			ran[a.Name] = true
			diags = append(diags, runOne(prog, t.Pkg, a, ig)...)
		}
		diags = append(diags, ig.stale(ran)...)
	}
	sort.Slice(diags, func(i, k int) bool {
		a, b := diags[i], diags[k]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Check < b.Check
	})
	return diags, nil
}

// runOne applies one analyzer to one package and filters ignored
// diagnostics, marking the directives it consumes. A nil ignore set is
// built on the spot (the corpus checker runs analyzers one at a time).
func runOne(prog *Program, pkg *Package, a *Analyzer, ig *ignoreSet) []Diagnostic {
	pass := &Pass{Prog: prog, Pkg: pkg, analyzer: a}
	a.Run(pass)
	if len(pass.diags) == 0 {
		return nil
	}
	if ig == nil {
		ig = ignoresOf(prog.Fset, pkg)
	}
	out := pass.diags[:0]
	for _, d := range pass.diags {
		if !ig.silences(d) {
			out = append(out, d)
		}
	}
	return out
}

// ignoreDirective is one lint:ignore comment, tracked through a whole
// vet run so the driver can tell which directives earned their keep.
type ignoreDirective struct {
	pos    token.Position
	checks []string
	used   bool
}

// ignoreSet indexes a package's directives by the file:line pairs they
// cover.
type ignoreSet struct {
	byLine map[string]map[int][]*ignoreDirective
	all    []*ignoreDirective
}

// ignoresOf collects the package's lint:ignore directives. A directive
// silences matching diagnostics on its own line; a directive whose
// comment group stands alone (no code before it on its last line) also
// silences the line immediately below the group, the staticcheck
// convention for annotating a whole statement.
func ignoresOf(fset *token.FileSet, pkg *Package) *ignoreSet {
	ig := &ignoreSet{byLine: make(map[string]map[int][]*ignoreDirective)}
	add := func(d *ignoreDirective, line int) {
		file := d.pos.Filename
		if ig.byLine[file] == nil {
			ig.byLine[file] = make(map[int][]*ignoreDirective)
		}
		ig.byLine[file][line] = append(ig.byLine[file][line], d)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:ignore") {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, "lint:ignore"))
				if len(fields) == 0 {
					continue
				}
				d := &ignoreDirective{
					pos:    fset.Position(c.Pos()),
					checks: strings.Split(fields[0], ","),
				}
				ig.all = append(ig.all, d)
				add(d, d.pos.Line)
				add(d, d.pos.Line+1)
			}
		}
	}
	return ig
}

// silences reports whether the diagnostic is covered by a directive,
// marking every directive that covers it as used.
func (ig *ignoreSet) silences(d Diagnostic) bool {
	lines := ig.byLine[d.Pos.Filename]
	if lines == nil {
		return false
	}
	hit := false
	for _, dir := range lines[d.Pos.Line] {
		for _, c := range dir.checks {
			if c == d.Check || c == "*" {
				dir.used = true
				hit = true
			}
		}
	}
	return hit
}

// stale reports the directives that silenced nothing even though every
// check they name ran over the package — dead suppressions. A directive
// naming a check that did not run is left alone (it may yet earn its
// keep), and a wildcard is only judged when the entire registered suite
// ran, since any absent analyzer could have been its target.
func (ig *ignoreSet) stale(ran map[string]bool) []Diagnostic {
	var out []Diagnostic
	for _, d := range ig.all {
		if d.used {
			continue
		}
		judgeable := true
		for _, c := range d.checks {
			if c == "*" {
				for _, a := range Analyzers {
					if !ran[a.Name] {
						judgeable = false
					}
				}
			} else if !ran[c] {
				judgeable = false
			}
		}
		if !judgeable {
			continue
		}
		out = append(out, Diagnostic{
			Pos:     d.pos,
			Check:   StaleIgnoreCheck,
			Message: fmt.Sprintf("lint:ignore %s silences no diagnostic; remove the stale directive", strings.Join(d.checks, ",")),
		})
	}
	return out
}

// enclosingFuncBody returns the body of the innermost function (decl or
// literal) containing pos in file, or nil. Analyzers use it to scope
// "later in the same function" reasoning.
func enclosingFuncBody(file *ast.File, pos token.Pos) *ast.BlockStmt {
	var body *ast.BlockStmt
	ast.Inspect(file, func(n ast.Node) bool {
		if n == nil || pos < n.Pos() || pos >= n.End() {
			return false
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				body = fn.Body
			}
		case *ast.FuncLit:
			body = fn.Body
		}
		return true
	})
	return body
}
