// Package queries defines the paper's workload: the schemas of the TPC-H
// subset and the click-stream table, and the SQL text of Q17, Q18, Q21 and
// Q-CSA (plus the simple Q-AGG used in Fig. 2(b)). The TPC-H queries are
// the flattened first-aggregation-then-join forms the paper evaluates
// (§VII.A.1); Q21 is the "Left Outer Join 1" subtree from the appendix,
// which dominates the full query and is what the paper measures (§VII.C).
//
// Two spellings differ from the paper listing: the derived tables of Q17
// are named inner_t/outer_t because INNER and OUTER are reserved words in
// standard SQL, and Q-CSA's category constants are the literals 1 and 2.
package queries

import (
	"fmt"

	"ysmart/internal/exec"
	"ysmart/internal/plan"
	"ysmart/internal/sqlparser"
)

// Catalog returns the table catalog for the workload. Dates are encoded as
// integer day numbers, which preserves comparisons without a date type.
func Catalog() plan.MapCatalog {
	return plan.MapCatalog{
		// The trailing columns (ship fields, clerk, comments) are never
		// touched by the workload queries; they exist so rows carry
		// TPC-H-realistic widths and map-side projection saves what it
		// saves on the real benchmark.
		"lineitem": exec.NewSchema(
			exec.Column{Name: "l_orderkey", Type: exec.TypeInt},
			exec.Column{Name: "l_partkey", Type: exec.TypeInt},
			exec.Column{Name: "l_suppkey", Type: exec.TypeInt},
			exec.Column{Name: "l_quantity", Type: exec.TypeFloat},
			exec.Column{Name: "l_extendedprice", Type: exec.TypeFloat},
			exec.Column{Name: "l_receiptdate", Type: exec.TypeInt},
			exec.Column{Name: "l_commitdate", Type: exec.TypeInt},
			exec.Column{Name: "l_shipdate", Type: exec.TypeInt},
			exec.Column{Name: "l_returnflag", Type: exec.TypeString},
			exec.Column{Name: "l_shipmode", Type: exec.TypeString},
			exec.Column{Name: "l_comment", Type: exec.TypeString},
		),
		"orders": exec.NewSchema(
			exec.Column{Name: "o_orderkey", Type: exec.TypeInt},
			exec.Column{Name: "o_custkey", Type: exec.TypeInt},
			exec.Column{Name: "o_orderstatus", Type: exec.TypeString},
			exec.Column{Name: "o_totalprice", Type: exec.TypeFloat},
			exec.Column{Name: "o_orderdate", Type: exec.TypeInt},
			exec.Column{Name: "o_clerk", Type: exec.TypeString},
			exec.Column{Name: "o_comment", Type: exec.TypeString},
		),
		"part": exec.NewSchema(
			exec.Column{Name: "p_partkey", Type: exec.TypeInt},
			exec.Column{Name: "p_name", Type: exec.TypeString},
		),
		"customer": exec.NewSchema(
			exec.Column{Name: "c_custkey", Type: exec.TypeInt},
			exec.Column{Name: "c_name", Type: exec.TypeString},
		),
		"supplier": exec.NewSchema(
			exec.Column{Name: "s_suppkey", Type: exec.TypeInt},
			exec.Column{Name: "s_name", Type: exec.TypeString},
			exec.Column{Name: "s_nationkey", Type: exec.TypeInt},
		),
		"nation": exec.NewSchema(
			exec.Column{Name: "n_nationkey", Type: exec.TypeInt},
			exec.Column{Name: "n_name", Type: exec.TypeString},
		),
		"clicks": exec.NewSchema(
			exec.Column{Name: "uid", Type: exec.TypeInt},
			exec.Column{Name: "page", Type: exec.TypeInt},
			exec.Column{Name: "cid", Type: exec.TypeInt},
			exec.Column{Name: "ts", Type: exec.TypeInt},
		),
	}
}

// QAGG counts clicks per category: the simple one-job aggregation of
// Fig. 2(b), where Hive's map-side hash aggregation makes it competitive
// with hand-coded MapReduce.
const QAGG = `SELECT cid, count(*) AS click_count FROM clicks GROUP BY cid`

// QCSA is the click-stream analysis query of Fig. 1: the average number of
// pages a user visits between a category-1 page and a category-2 page.
// Plan tree in Fig. 2(a): JOIN1, AGG1, AGG2, JOIN2, AGG3 (all with
// partition key uid) and the final global AGG4.
const QCSA = `
SELECT avg(pageview_count) AS avg_pageviews FROM
 (SELECT c.uid, mp.ts1, (count(*) - 2) AS pageview_count
  FROM clicks AS c,
   (SELECT uid, max(ts1) AS ts1, ts2
    FROM (SELECT c1.uid, c1.ts AS ts1, min(c2.ts) AS ts2
          FROM clicks AS c1, clicks AS c2
          WHERE c1.uid = c2.uid AND c1.ts < c2.ts
            AND c1.cid = 1 AND c2.cid = 2
          GROUP BY c1.uid, c1.ts) AS cp
    GROUP BY uid, ts2) AS mp
  WHERE c.uid = mp.uid AND c.ts >= mp.ts1 AND c.ts <= mp.ts2
  GROUP BY c.uid, mp.ts1) AS pageview_counts`

// Q17 is the paper's variation of TPC-H Q17 (Fig. 3): average yearly
// revenue lost by not filling small-quantity orders. Plan tree in Fig. 4:
// AGG1 (inner), JOIN1 (outer), JOIN2, and the final global aggregation.
const Q17 = `
SELECT sum(l_extendedprice) / 7.0 AS avg_yearly
FROM (SELECT l_partkey, 0.2 * avg(l_quantity) AS t1
      FROM lineitem
      GROUP BY l_partkey) AS inner_t,
     (SELECT l_partkey, l_quantity, l_extendedprice
      FROM lineitem, part
      WHERE p_partkey = l_partkey) AS outer_t
WHERE outer_t.l_partkey = inner_t.l_partkey
  AND outer_t.l_quantity < inner_t.t1`

// Q18 is flattened TPC-H Q18 (large-volume customers) in the
// first-aggregation-then-join form. Plan tree in Fig. 8(a): JOIN1
// (orders ⋈ lineitem), AGG1 (lineitem grouped by l_orderkey), JOIN2 —
// all with partition key l_orderkey — then JOIN3 with customer on
// c_custkey, AGG2, and the final SORT.
const Q18 = `
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, t_sum_quantity
FROM customer,
     (SELECT sq1.o_orderkey AS o_orderkey, sq1.o_custkey AS o_custkey,
             sq1.o_orderdate AS o_orderdate, sq1.o_totalprice AS o_totalprice,
             sq2.t_sum_quantity AS t_sum_quantity
      FROM (SELECT o_orderkey, o_custkey, o_orderdate, o_totalprice, l_quantity
            FROM orders, lineitem
            WHERE o_orderkey = l_orderkey) AS sq1,
           (SELECT l_orderkey, sum(l_quantity) AS t_sum_quantity
            FROM lineitem
            GROUP BY l_orderkey) AS sq2
      WHERE sq1.o_orderkey = sq2.l_orderkey
        AND sq2.t_sum_quantity > 300) AS big
WHERE c_custkey = big.o_custkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice, t_sum_quantity
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100`

// Q21 is the "Left Outer Join 1" subtree of flattened TPC-H Q21 — the SQL
// of the paper's appendix, and the dominant part of the full query that
// §VII.C measures. Plan tree in Fig. 8(b): JOIN1 (lineitem ⋈ orders), AGG1,
// JOIN2, AGG2 and Left Outer Join 1, all with partition key l_orderkey.
const Q21 = `
SELECT sq12.l_suppkey FROM
 (SELECT sq1.l_orderkey, sq1.l_suppkey FROM
   (SELECT l_suppkey, l_orderkey
    FROM lineitem, orders
    WHERE o_orderkey = l_orderkey
      AND l_receiptdate > l_commitdate
      AND o_orderstatus = 'F') AS sq1,
   (SELECT l_orderkey,
           count(distinct l_suppkey) AS cs,
           max(l_suppkey) AS ms
    FROM lineitem
    GROUP BY l_orderkey) AS sq2
  WHERE sq1.l_orderkey = sq2.l_orderkey
    AND ((sq2.cs > 1) OR ((sq2.cs = 1) AND (sq1.l_suppkey <> sq2.ms)))
 ) AS sq12
 LEFT OUTER JOIN
 (SELECT l_orderkey,
         count(distinct l_suppkey) AS cs,
         max(l_suppkey) AS ms
  FROM lineitem
  WHERE l_receiptdate > l_commitdate
  GROUP BY l_orderkey) AS sq3
 ON sq12.l_orderkey = sq3.l_orderkey
WHERE (sq3.cs IS NULL) OR ((sq3.cs = 1) AND (sq12.l_suppkey = sq3.ms))`

// Q21Full is the complete flattened TPC-H Q21 (suppliers who kept orders
// waiting) whose plan is the paper's Fig. 8(b): the Left Outer Join 1
// sub-tree (= Q21 above), then joins with supplier and nation, the
// numwait aggregation, and the final sort. The paper measures only the
// sub-tree ("the dominated part", §VII.C); the full query is included as
// an extension exercising a 9-operation plan.
const Q21Full = `
SELECT s_name, count(*) AS numwait
FROM nation,
     supplier,
     (SELECT sq12.l_suppkey FROM
       (SELECT sq1.l_orderkey, sq1.l_suppkey FROM
         (SELECT l_suppkey, l_orderkey
          FROM lineitem, orders
          WHERE o_orderkey = l_orderkey
            AND l_receiptdate > l_commitdate
            AND o_orderstatus = 'F') AS sq1,
         (SELECT l_orderkey,
                 count(distinct l_suppkey) AS cs,
                 max(l_suppkey) AS ms
          FROM lineitem
          GROUP BY l_orderkey) AS sq2
        WHERE sq1.l_orderkey = sq2.l_orderkey
          AND ((sq2.cs > 1) OR ((sq2.cs = 1) AND (sq1.l_suppkey <> sq2.ms)))
       ) AS sq12
       LEFT OUTER JOIN
       (SELECT l_orderkey,
               count(distinct l_suppkey) AS cs,
               max(l_suppkey) AS ms
        FROM lineitem
        WHERE l_receiptdate > l_commitdate
        GROUP BY l_orderkey) AS sq3
       ON sq12.l_orderkey = sq3.l_orderkey
      WHERE (sq3.cs IS NULL) OR ((sq3.cs = 1) AND (sq12.l_suppkey = sq3.ms))
     ) AS viol
WHERE s_suppkey = viol.l_suppkey
  AND s_nationkey = n_nationkey
  AND n_name = 'NATION07'
GROUP BY s_name
ORDER BY numwait DESC, s_name
LIMIT 100`

// Q18Orig is TPC-H Q18 in its original nested form, with the IN subquery
// the paper had to flatten by hand before Hive could run it (§VII.A.1:
// "these queries have to be flattened"). This repository's planner
// flattens it automatically into a semi-join, so the nested form runs
// directly and must return exactly the rows of the flattened Q18.
const Q18Orig = `
SELECT c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice,
       sum(l_quantity) AS t_sum_quantity
FROM customer, orders, lineitem
WHERE o_orderkey IN (SELECT l_orderkey
                     FROM lineitem
                     GROUP BY l_orderkey
                     HAVING sum(l_quantity) > 300)
  AND c_custkey = o_custkey
  AND o_orderkey = l_orderkey
GROUP BY c_name, c_custkey, o_orderkey, o_orderdate, o_totalprice
ORDER BY o_totalprice DESC, o_orderdate
LIMIT 100`

// Named returns the workload queries by their paper names.
func Named() map[string]string {
	return map[string]string{
		"Q17":      Q17,
		"Q18":      Q18,
		"Q18-orig": Q18Orig,
		"Q21":      Q21,
		"Q21-full": Q21Full,
		"Q-CSA":    QCSA,
		"Q-AGG":    QAGG,
	}
}

// Plan parses sql and builds its logical plan against the workload catalog.
func Plan(sql string) (plan.Node, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	root, err := plan.Build(stmt, Catalog())
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	return root, nil
}

// MustPlan is Plan for the package's own constants; it panics on error and
// exists for tests and examples.
func MustPlan(sql string) plan.Node {
	root, err := Plan(sql)
	if err != nil {
		panic(err)
	}
	return root
}
