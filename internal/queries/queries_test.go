package queries

import (
	"strings"
	"testing"

	"ysmart/internal/plan"
	"ysmart/internal/sqlparser"
)

func TestAllNamedQueriesPlan(t *testing.T) {
	for name, sql := range Named() {
		t.Run(name, func(t *testing.T) {
			root, err := Plan(sql)
			if err != nil {
				t.Fatalf("Plan: %v", err)
			}
			if root.Schema().Len() == 0 {
				t.Error("empty output schema")
			}
		})
	}
}

func TestNamedCoversPaperWorkload(t *testing.T) {
	named := Named()
	for _, want := range []string{"Q17", "Q18", "Q21", "Q21-full", "Q-CSA", "Q-AGG"} {
		if _, ok := named[want]; !ok {
			t.Errorf("missing %s", want)
		}
	}
}

func TestCatalogHasAllReferencedTables(t *testing.T) {
	cat := Catalog()
	for _, table := range []string{"lineitem", "orders", "part", "customer", "supplier", "nation", "clicks"} {
		s, ok := cat.Table(table)
		if !ok {
			t.Errorf("missing table %s", table)
			continue
		}
		if s.Len() == 0 {
			t.Errorf("table %s has no columns", table)
		}
	}
	// Case-insensitive lookup.
	if _, ok := cat.Table("LINEITEM"); !ok {
		t.Error("catalog lookup should be case-insensitive")
	}
	if _, ok := cat.Table("nope"); ok {
		t.Error("unknown table should not resolve")
	}
}

func TestPlanErrors(t *testing.T) {
	if _, err := Plan("NOT SQL AT ALL"); err == nil || !strings.Contains(err.Error(), "parse") {
		t.Errorf("err = %v, want parse error", err)
	}
	if _, err := Plan("SELECT x FROM nosuch"); err == nil || !strings.Contains(err.Error(), "plan") {
		t.Errorf("err = %v, want plan error", err)
	}
}

func TestMustPlanPanicsOnBadSQL(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPlan should panic on invalid SQL")
		}
	}()
	MustPlan("SELECT FROM")
}

// TestQCSAMatchesPaperPlanShape pins the Fig. 2(a) operation structure.
func TestQCSAMatchesPaperPlanShape(t *testing.T) {
	root := MustPlan(QCSA)
	var joins, aggs int
	plan.Walk(root, func(n plan.Node) {
		switch n.(type) {
		case *plan.Join:
			joins++
		case *plan.Aggregate:
			aggs++
		}
	})
	if joins != 2 || aggs != 4 {
		t.Errorf("joins=%d aggs=%d, want 2 joins and 4 aggregations (Fig. 2(a))", joins, aggs)
	}
}

// TestQ21UsesLeftOuterJoin pins the appendix sub-tree's outer join.
func TestQ21UsesLeftOuterJoin(t *testing.T) {
	root := MustPlan(Q21)
	found := false
	plan.Walk(root, func(n plan.Node) {
		if j, ok := n.(*plan.Join); ok && j.Type == sqlparser.LeftOuterJoin {
			found = true
		}
	})
	if !found {
		t.Error("Q21 must contain a left outer join")
	}
}
