package ysmart_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestExamplesRun executes every example program end to end so the examples
// in the README cannot rot. Skipped with -short.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples take a few seconds each")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("only %d examples; the repository promises at least three", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if len(out) == 0 {
				t.Errorf("example %s produced no output", name)
			}
		})
	}
}
