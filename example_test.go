package ysmart_test

import (
	"fmt"
	"log"

	"ysmart"
)

// Example compiles and runs a grouped aggregation end to end on the
// simulated cluster.
func Example() {
	catalog := ysmart.Catalog{
		"events": ysmart.NewSchema(
			ysmart.Column{Name: "kind", Type: ysmart.TypeString},
			ysmart.Column{Name: "ms", Type: ysmart.TypeInt},
		),
	}
	q, err := ysmart.Parse(
		"SELECT kind, count(*) AS n FROM events WHERE ms > 10 GROUP BY kind", catalog)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := q.Translate(ysmart.YSmart, ysmart.Options{QueryName: "example"})
	if err != nil {
		log.Fatal(err)
	}
	rt, err := ysmart.NewRuntime(ysmart.SmallCluster())
	if err != nil {
		log.Fatal(err)
	}
	rt.LoadTable("events", []ysmart.Row{
		{ysmart.Str("click"), ysmart.Int(40)},
		{ysmart.Str("view"), ysmart.Int(5)},
		{ysmart.Str("click"), ysmart.Int(25)},
		{ysmart.Str("view"), ysmart.Int(90)},
	})
	res, err := rt.Run(tr)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d job(s)\n", len(res.Stats.Jobs))
	for _, row := range res.Rows {
		fmt.Printf("%s %s\n", row[0].String(), row[1].String())
	}
	// Output:
	// 1 job(s)
	// click 2
	// view 1
}

// ExampleQuery_ExplainCorrelations shows the correlation analysis of the
// paper's TPC-H Q17 variant (§IV.B).
func ExampleQuery_ExplainCorrelations() {
	q, err := ysmart.Parse(ysmart.WorkloadQueries()["Q17"], ysmart.WorkloadCatalog())
	if err != nil {
		log.Fatal(err)
	}
	tr, err := q.Translate(ysmart.YSmart, ysmart.Options{QueryName: "q17"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("jobs: %d\n", tr.NumJobs())
	// Output:
	// jobs: 2
}
