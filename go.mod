module ysmart

go 1.22
