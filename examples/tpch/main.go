// Tpch runs the three flattened TPC-H queries (Q17, Q18, Q21) under every
// translation mode on generated data, printing the job counts, scan/shuffle
// volumes and simulated times side by side — a small version of the
// paper's Fig. 10 comparison.
package main

import (
	"fmt"
	"log"

	"ysmart"
)

func main() {
	catalog := ysmart.WorkloadCatalog()
	tpch, err := ysmart.GenerateTPCH(ysmart.TPCHConfig{
		Orders: 1500, Parts: 150, Customers: 300, Suppliers: 80, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}

	modes := []ysmart.Mode{ysmart.OneToOne, ysmart.PigLike, ysmart.ICTCOnly, ysmart.YSmart}
	fmt.Printf("%-5s %-12s %5s %12s %12s %10s\n",
		"query", "mode", "jobs", "scan-bytes", "shuffle", "sim-time")
	for _, name := range []string{"Q17", "Q18", "Q21"} {
		q, err := ysmart.Parse(ysmart.WorkloadQueries()[name], catalog)
		if err != nil {
			log.Fatal(err)
		}
		for _, mode := range modes {
			tr, err := q.Translate(mode, ysmart.Options{
				QueryName: fmt.Sprintf("%s-%s", name, mode),
			})
			if err != nil {
				log.Fatal(err)
			}
			rt, err := ysmart.NewRuntime(ysmart.SmallCluster())
			if err != nil {
				log.Fatal(err)
			}
			rt.LoadTables(tpch)
			res, err := rt.Run(tr)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-5s %-12s %5d %12d %12d %9.0fs\n",
				name, mode, tr.NumJobs(),
				res.Stats.TotalMapInputBytes(), res.Stats.TotalShuffleBytes(),
				res.Stats.TotalTime())
		}
		fmt.Println()
	}
}
