// Clickstream runs the paper's flagship query Q-CSA ("average number of
// pages a user visits between a category-X page and a category-Y page",
// Fig. 1) end to end, comparing YSmart's two-job translation against the
// Hive-style six-job chain on the same generated click stream.
package main

import (
	"fmt"
	"log"

	"ysmart"
)

func main() {
	catalog := ysmart.WorkloadCatalog()
	sql := ysmart.WorkloadQueries()["Q-CSA"]

	q, err := ysmart.Parse(sql, catalog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Q-CSA correlations (paper §VII.A.2) ==")
	fmt.Print(q.ExplainCorrelations())

	clicks, err := ysmart.GenerateClicks(ysmart.ClickConfig{
		Users: 200, ClicksPerUser: 50, Categories: 5, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []ysmart.Mode{ysmart.YSmart, ysmart.OneToOne} {
		tr, err := q.Translate(mode, ysmart.Options{QueryName: "csa-" + mode.String()})
		if err != nil {
			log.Fatal(err)
		}
		rt, err := ysmart.NewRuntime(ysmart.SmallCluster())
		if err != nil {
			log.Fatal(err)
		}
		rt.LoadTables(clicks)
		res, err := rt.Run(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s ==\n", mode)
		fmt.Print(tr.Describe())
		fmt.Printf("simulated time %.0fs, table-scan volume %d bytes, shuffle %d bytes\n",
			res.Stats.TotalTime(), res.Stats.TotalMapInputBytes(), res.Stats.TotalShuffleBytes())
		if len(res.Rows) == 1 {
			fmt.Printf("average pageviews between category 1 and 2: %s\n", res.Rows[0][0].String())
		}
	}
}
