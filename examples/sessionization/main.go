// Sessionization splits each user's click stream into sessions — the
// paper's introduction names click-stream sessionization as a motivating
// workload class. A click starts a new session when no other click by the
// same user happened in the preceding 15 time units, which a self outer
// join expresses directly:
//
//	session starts = clicks with no predecessor in (ts-15, ts)
//
// The query needs a self-join with a range residual plus an aggregation on
// top — exactly the correlation structure YSmart merges into a single job
// where the one-operation-per-job baseline runs three.
package main

import (
	"fmt"
	"log"

	"ysmart"
)

const sessionSQL = `
SELECT starts.uid, count(*) AS sessions
FROM (SELECT c1.uid, c1.ts
      FROM clicks c1
      LEFT OUTER JOIN clicks c2
        ON c1.uid = c2.uid AND c2.ts < c1.ts AND c2.ts > c1.ts - 15
      WHERE c2.ts IS NULL) AS starts
GROUP BY starts.uid
ORDER BY sessions DESC, starts.uid
LIMIT 10`

func main() {
	q, err := ysmart.Parse(sessionSQL, ysmart.WorkloadCatalog())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== correlations ==")
	fmt.Print(q.ExplainCorrelations())

	clicks, err := ysmart.GenerateClicks(ysmart.ClickConfig{
		Users: 100, ClicksPerUser: 40, Categories: 5, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []ysmart.Mode{ysmart.YSmart, ysmart.OneToOne} {
		tr, err := q.Translate(mode, ysmart.Options{QueryName: "sessions-" + mode.String()})
		if err != nil {
			log.Fatal(err)
		}
		rt, err := ysmart.NewRuntime(ysmart.SmallCluster())
		if err != nil {
			log.Fatal(err)
		}
		rt.LoadTables(clicks)
		res, err := rt.Run(tr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s: %d job(s), %.0f simulated seconds ==\n",
			mode, len(res.Stats.Jobs), res.Stats.TotalTime())
		if mode == ysmart.YSmart {
			fmt.Println("top users by session count:")
			for _, row := range res.Rows {
				fmt.Printf("  user %-5s %s sessions\n", row[0].String(), row[1].String())
			}
		}
	}
}
