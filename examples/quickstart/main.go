// Quickstart: parse a SQL query, translate it with YSmart, execute it on
// the simulated cluster, and print the result — the smallest end-to-end
// use of the public API.
package main

import (
	"fmt"
	"log"

	"ysmart"
)

func main() {
	// 1. Describe the table.
	catalog := ysmart.Catalog{
		"visits": ysmart.NewSchema(
			ysmart.Column{Name: "user_id", Type: ysmart.TypeInt},
			ysmart.Column{Name: "page", Type: ysmart.TypeString},
			ysmart.Column{Name: "ms", Type: ysmart.TypeInt},
		),
	}

	// 2. Parse and plan a query.
	q, err := ysmart.Parse(`
		SELECT page, count(*) AS hits, avg(ms) AS avg_ms
		FROM visits
		WHERE ms > 10
		GROUP BY page
		ORDER BY hits DESC`, catalog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== logical plan ==")
	fmt.Print(q.ExplainPlan())

	// 3. Translate to MapReduce jobs.
	tr, err := q.Translate(ysmart.YSmart, ysmart.Options{QueryName: "quickstart"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== job plan ==")
	fmt.Print(tr.Describe())

	// 4. Load data and run.
	rt, err := ysmart.NewRuntime(ysmart.SmallCluster())
	if err != nil {
		log.Fatal(err)
	}
	rt.LoadTable("visits", []ysmart.Row{
		{ysmart.Int(1), ysmart.Str("/home"), ysmart.Int(120)},
		{ysmart.Int(2), ysmart.Str("/home"), ysmart.Int(80)},
		{ysmart.Int(3), ysmart.Str("/about"), ysmart.Int(40)},
		{ysmart.Int(1), ysmart.Str("/home"), ysmart.Int(5)}, // filtered out
		{ysmart.Int(2), ysmart.Str("/about"), ysmart.Int(60)},
		{ysmart.Int(3), ysmart.Str("/home"), ysmart.Int(200)},
	})
	res, err := rt.Run(tr)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== result %s ==\n", res.Schema)
	for _, row := range res.Rows {
		fmt.Printf("%-8s hits=%s avg_ms=%s\n", row[0].String(), row[1].String(), row[2].String())
	}
	fmt.Printf("== stats ==\n%s\n", res.Stats.String())
}
