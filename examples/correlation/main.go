// Correlation is an interactive probe of YSmart's query analysis: feed it
// any SQL over the workload tables and it prints the logical plan, the
// detected intra-query correlations (input, transit, job-flow — paper §IV),
// and the job plan each translation mode would generate.
//
// Usage:
//
//	go run ./examples/correlation                 # analyzes TPC-H Q18
//	go run ./examples/correlation -sql "SELECT ..."
package main

import (
	"flag"
	"fmt"
	"log"

	"ysmart"
)

func main() {
	sql := flag.String("sql", "", "SQL text over the workload tables (default: Q18)")
	flag.Parse()

	text := *sql
	if text == "" {
		text = ysmart.WorkloadQueries()["Q18"]
		fmt.Println("analyzing TPC-H Q18 (pass -sql to analyze your own query)")
	}

	q, err := ysmart.Parse(text, ysmart.WorkloadCatalog())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== logical plan ==")
	fmt.Print(q.ExplainPlan())
	fmt.Println("== operations, partition keys and correlations ==")
	fmt.Print(q.ExplainCorrelations())

	for _, mode := range []ysmart.Mode{ysmart.OneToOne, ysmart.ICTCOnly, ysmart.YSmart} {
		tr, err := q.Translate(mode, ysmart.Options{QueryName: "probe-" + mode.String()})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n== %s ==\n", mode)
		fmt.Print(tr.Describe())
	}
}
