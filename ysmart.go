// Package ysmart is a from-scratch reproduction of "YSmart: Yet Another
// SQL-to-MapReduce Translator" (Lee, Luo, Huai, Wang, He, Zhang — ICDCS
// 2011): a correlation-aware translator that compiles SQL queries into the
// minimal number of MapReduce jobs by detecting input, transit and job-flow
// correlations between the query's operations, plus everything it needs to
// run — a SQL parser and planner, a Common MapReduce Framework, a
// deterministic simulated Hadoop engine with a calibrated cost model, a
// pipelined DBMS baseline, workload generators, and harnesses regenerating
// every figure of the paper's evaluation.
//
// The quickest path through the API:
//
//	cat := ysmart.Catalog{"clicks": ysmart.NewSchema(...)}
//	q, _ := ysmart.Parse("SELECT cid, count(*) FROM clicks GROUP BY cid", cat)
//	tr, _ := q.Translate(ysmart.YSmart, ysmart.Options{QueryName: "demo"})
//	rt, _ := ysmart.NewRuntime(ysmart.SmallCluster())
//	rt.LoadTable("clicks", rows)
//	res, _ := rt.Run(tr)
//
// See examples/ for runnable programs and internal/experiments for the
// paper's evaluation.
package ysmart

import (
	"fmt"
	"io"

	"ysmart/internal/correlation"
	"ysmart/internal/datagen"
	"ysmart/internal/dbms"
	"ysmart/internal/exec"
	"ysmart/internal/mapreduce"
	"ysmart/internal/obs"
	"ysmart/internal/optanalysis"
	"ysmart/internal/plan"
	"ysmart/internal/queries"
	"ysmart/internal/reuse"
	"ysmart/internal/sqlparser"
	"ysmart/internal/translator"
)

// Re-exported data-model types.
type (
	// Value is a dynamically typed SQL value.
	Value = exec.Value
	// Row is a tuple of values.
	Row = exec.Row
	// Column describes one schema attribute.
	Column = exec.Column
	// Schema is an ordered list of columns.
	Schema = exec.Schema
	// Catalog maps table names to schemas.
	Catalog = plan.MapCatalog
	// Cluster configures the simulated cluster (nodes, slots, cost model,
	// compression, contention, data scale).
	Cluster = mapreduce.Cluster
	// Mode selects a translation strategy.
	Mode = translator.Mode
	// Options tunes a translation.
	Options = translator.Options
	// Translation is a compiled, executable MapReduce job chain.
	Translation = translator.Translation
	// ChainStats reports per-job counters and simulated times.
	ChainStats = mapreduce.ChainStats
	// FaultPlan is a deterministic, seeded fault-injection scenario
	// (task failures, node deaths, stragglers) attached to Cluster.Faults.
	FaultPlan = mapreduce.FaultPlan
	// NodeFailure kills one node at an absolute simulated time.
	NodeFailure = mapreduce.NodeFailure
	// Speculation configures backup attempts for straggling tasks.
	Speculation = mapreduce.Speculation
	// TaskAttempt is one scheduled execution attempt in a fault-injected
	// run (JobStats.Attempts).
	TaskAttempt = mapreduce.TaskAttempt
	// Tracer receives span and instant events from an instrumented run.
	Tracer = obs.Tracer
	// TraceEvent is one emitted span or instant.
	TraceEvent = obs.Event
	// Collector is an in-memory Tracer recording events in emission order.
	Collector = obs.Collector
	// Registry accumulates named counters, gauges and latency/byte/row
	// histograms (Observe/Quantile).
	Registry = obs.Registry
	// Logger is the leveled structured JSON event logger (one event per
	// line, deterministic field order).
	Logger = obs.Logger
	// LogLevel orders log events by severity.
	LogLevel = obs.Level
	// ReuseStore is the cross-query materialized-output store (ReStore
	// style): job outputs recorded under canonical sub-plan fingerprints,
	// validated by per-table epochs, bounded by a cost-model eviction
	// policy.
	ReuseStore = reuse.Store
	// ReusePlan is a translation rewritten against a ReuseStore: the jobs
	// that still need to run, plus hit/skip/bytes-saved accounting.
	ReusePlan = translator.ReusePlan
)

// Log levels for NewLogger.
const (
	LogDebug = obs.LevelDebug
	LogInfo  = obs.LevelInfo
	LogWarn  = obs.LevelWarn
	LogError = obs.LevelError
)

// Value type constants and constructors.
const (
	TypeNull   = exec.TypeNull
	TypeInt    = exec.TypeInt
	TypeFloat  = exec.TypeFloat
	TypeString = exec.TypeString
	TypeBool   = exec.TypeBool
)

// Translation modes (see the paper's §III and §V).
const (
	// OneToOne is the Hive-style one-operation-to-one-job baseline.
	OneToOne = translator.OneToOne
	// PigLike is the Pig-style baseline (no combiner, fat intermediates).
	PigLike = translator.PigLike
	// ICTCOnly applies only merging Rule 1 (input+transit correlation).
	ICTCOnly = translator.ICTCOnly
	// YSmart applies all four merging rules.
	YSmart = translator.YSmart
)

// Value constructors.
var (
	Null  = exec.Null
	Int   = exec.Int
	Float = exec.Float
	Str   = exec.Str
	Bool  = exec.Bool
)

// NewSchema builds a schema from columns.
func NewSchema(cols ...Column) *Schema { return exec.NewSchema(cols...) }

// Cluster presets modelled on the paper's test environments (§VII.B).
var (
	// SmallCluster is the two-node lab cluster (one TaskTracker, 4 slots).
	SmallCluster = mapreduce.SmallCluster
	// EC2Cluster models an Amazon EC2 cluster with the given worker count.
	EC2Cluster = mapreduce.EC2Cluster
	// FacebookCluster models the 747-node shared production cluster; the
	// seed drives its deterministic contention.
	FacebookCluster = mapreduce.FacebookCluster
)

// WorkloadCatalog returns the paper's table catalog (TPC-H subset plus the
// click-stream table), and WorkloadQueries the named workload queries
// (Q17, Q18, Q21, Q-CSA, Q-AGG).
func WorkloadCatalog() Catalog           { return queries.Catalog() }
func WorkloadQueries() map[string]string { return queries.Named() }

// TablePath is the DFS path a base table is loaded at.
func TablePath(table string) string { return translator.TablePath(table) }

// ParseFaultSpec parses the compact fault DSL of the -faults CLI flag
// (e.g. "task=0.1,straggler=0.05x6,node=2@500") into a FaultPlan.
func ParseFaultSpec(spec string) (*FaultPlan, error) { return mapreduce.ParseFaultSpec(spec) }

// ---------------------------------------------------------------------------
// Query: parse + plan + analyze
// ---------------------------------------------------------------------------

// Query is a parsed and planned SQL query.
type Query struct {
	SQL      string
	root     plan.Node
	analysis *correlation.Analysis
}

// Parse parses sql and builds its logical plan against the catalog.
func Parse(sql string, cat Catalog) (*Query, error) {
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	root, err := plan.Build(stmt, cat)
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	a, err := correlation.Analyze(root)
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	return &Query{SQL: sql, root: root, analysis: a}, nil
}

// Plan returns the logical plan root (for advanced callers).
func (q *Query) Plan() plan.Node { return q.root }

// OutputSchema is the schema of the query result.
func (q *Query) OutputSchema() *Schema { return q.root.Schema() }

// ExplainPlan renders the logical plan tree.
func (q *Query) ExplainPlan() string { return plan.Format(q.root) }

// ExplainCorrelations renders the detected operations, partition keys and
// correlations (the paper's §IV analysis).
func (q *Query) ExplainCorrelations() string { return q.analysis.Report() }

// Translate compiles the query into MapReduce jobs under a mode.
func (q *Query) Translate(mode Mode, opts Options) (*Translation, error) {
	return translator.Translate(q.root, mode, opts)
}

// ApplyManimal installs the MANIMAL-style scan rewrites on a translation
// (the -manimal CLI flag): every base-table input whose scan facts prove
// a sound raw-line predicate gets an early-filter prefilter, and the rest
// are refused with recorded reasons. It returns how many filters were
// installed plus a human-readable report of every decision. Results stay
// byte-identical; only scanned-versus-mapped work changes.
func ApplyManimal(tr *Translation) (applied int, report string) {
	a, r := optanalysis.ApplyTranslation(tr)
	return len(a), optanalysis.FormatScanFacts(a, r)
}

// ---------------------------------------------------------------------------
// Runtime: DFS + engine
// ---------------------------------------------------------------------------

// Runtime couples a simulated DFS with an engine on a cluster model.
type Runtime struct {
	dfs    *mapreduce.DFS
	engine *mapreduce.Engine
}

// NewRuntime builds a runtime over a fresh DFS.
func NewRuntime(cluster *Cluster) (*Runtime, error) {
	dfs := mapreduce.NewDFS()
	eng, err := mapreduce.NewEngine(dfs, cluster)
	if err != nil {
		return nil, err
	}
	return &Runtime{dfs: dfs, engine: eng}, nil
}

// DFS exposes the runtime's file system.
func (r *Runtime) DFS() *mapreduce.DFS { return r.dfs }

// SetWorkers sets how many goroutines the engine uses to execute map
// tasks, combiners and reduce key groups (the -workers CLI flag). The
// default is runtime.NumCPU(); n <= 1 runs fully sequentially. Results,
// stats and traces are byte-identical at any worker count — only host
// wall-clock time changes.
func (r *Runtime) SetWorkers(n int) { r.engine.SetWorkers(n) }

// Workers returns the engine's worker count.
func (r *Runtime) Workers() int { return r.engine.Workers() }

// LoadTable stores rows as a base table.
func (r *Runtime) LoadTable(name string, rows []Row) {
	r.dfs.Write(TablePath(name), datagen.Lines(rows))
}

// LoadTables stores a whole generated data set.
func (r *Runtime) LoadTables(tables map[string][]Row) {
	for name, rows := range tables {
		r.LoadTable(name, rows)
	}
}

// LoadTableLines stores pre-encoded rows (the codec format EncodeTable
// produces and ysmart-datagen writes) as a base table.
func (r *Runtime) LoadTableLines(name string, lines []string) {
	r.dfs.Write(TablePath(name), lines)
}

// EncodeTable renders rows in the engine's row codec, one line per row —
// the format LoadTableLines and the DFS consume.
func EncodeTable(rows []Row) []string { return datagen.Lines(rows) }

// Result is an executed query: its rows plus execution statistics.
type Result struct {
	Schema *Schema
	Rows   []Row
	Stats  *ChainStats
	// Reuse reports the cross-query rewrite of a WithReuse run (nil
	// otherwise): jobs skipped, store hits/misses, bytes and predicted
	// seconds saved.
	Reuse *ReusePlan
}

// RunOption configures one Run invocation (tracing, metrics).
type RunOption func(*runConfig)

type runConfig struct {
	tracer  obs.Tracer
	metrics *obs.Registry
	logger  *obs.Logger
	reuse   *reuse.Store
}

// WithTracer attaches a tracer to the run: the engine emits job/phase/wave
// spans and DFS/CMF instants stamped with the simulated clock. Execution
// results and stats are unchanged.
func WithTracer(t Tracer) RunOption { return func(c *runConfig) { c.tracer = t } }

// WithMetrics attaches a registry accumulating engine, DFS and CMF
// counters, gauges and distribution histograms (job phase durations,
// shuffle bytes, rows emitted, chain latency) across the run.
func WithMetrics(r *Registry) RunOption { return func(c *runConfig) { c.metrics = r } }

// WithLogger attaches a structured event logger to the run: the engine
// logs chain and job lifecycle, retries, recomputes and node failures as
// one JSON event per line on the simulated clock.
func WithLogger(l *Logger) RunOption { return func(c *runConfig) { c.logger = l } }

// WithReuse executes the translation through the cross-query reuse store
// (the -reuse CLI flag): sub-plans whose fingerprints match a valid
// stored artifact are served from the store instead of re-executed, and
// the outputs of the jobs that do run are recorded for future queries.
// The store watches this runtime's DFS so later base-table writes
// invalidate dependent artifacts. Result rows are byte-identical with and
// without reuse; Result.Reuse carries the accounting.
func WithReuse(s *ReuseStore) RunOption { return func(c *runConfig) { c.reuse = s } }

// NewReuseStore returns an empty cross-query reuse store. capBytes bounds
// the stored artifact bytes (0 = unbounded); reg, when non-nil, receives
// the ysmart_reuse_* metric families.
func NewReuseStore(capBytes int64, reg *Registry) *ReuseStore {
	return reuse.NewStore(capBytes, reg)
}

// Run executes a translation and reads back its result.
func (r *Runtime) Run(t *Translation, opts ...RunOption) (*Result, error) {
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.tracer != nil || cfg.metrics != nil {
		r.engine.Instrument(cfg.tracer, cfg.metrics)
		defer r.engine.Instrument(nil, nil)
	}
	if cfg.logger != nil {
		r.engine.SetLogger(cfg.logger)
		defer r.engine.SetLogger(nil)
	}
	if cfg.reuse != nil {
		cfg.reuse.WatchDFS(r.dfs)
		rp := translator.ApplyReuse(t, cfg.reuse, r.dfs)
		stats, err := r.engine.RunChain(rp.Jobs)
		if err != nil {
			return nil, err
		}
		rows, err := rp.ReadResult(r.dfs)
		if err != nil {
			return nil, err
		}
		rp.Record(cfg.reuse, r.dfs, stats)
		return &Result{Schema: t.OutputSchema, Rows: rows, Stats: stats, Reuse: rp}, nil
	}
	stats, err := r.engine.RunChain(t.Jobs)
	if err != nil {
		return nil, err
	}
	rows, err := t.ReadResult(r.dfs)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: t.OutputSchema, Rows: rows, Stats: stats}, nil
}

// ---------------------------------------------------------------------------
// Observability re-exports
// ---------------------------------------------------------------------------

// NewCollector returns an in-memory tracer.
func NewCollector() *Collector { return obs.NewCollector() }

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// NewLogger returns a structured JSON event logger writing events at or
// above min to w. A nil *Logger is a valid no-op receiver.
func NewLogger(w io.Writer, min LogLevel) *Logger { return obs.NewLogger(w, min) }

// ParseLogLevel maps "debug", "info", "warn" or "error" to its LogLevel.
func ParseLogLevel(name string) (LogLevel, bool) { return obs.ParseLevel(name) }

// ChromeTrace renders collected events as Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
func ChromeTrace(events []TraceEvent) []byte { return obs.ChromeTrace(events) }

// RenderTimeline renders collected events as an ASCII Gantt chart of the
// simulated execution, width characters wide.
func RenderTimeline(events []TraceEvent, width int) string { return obs.Timeline(events, width) }

// WriteMetrics dumps a registry in Prometheus text exposition format.
func WriteMetrics(w io.Writer, r *Registry) error { return obs.WritePrometheus(w, r) }

// FormatBytes renders a byte count with a binary unit suffix.
func FormatBytes(n int64) string { return obs.FormatBytes(n) }

// ---------------------------------------------------------------------------
// Data generation and the DBMS baseline
// ---------------------------------------------------------------------------

// GenerateTPCH produces the deterministic TPC-H subset.
func GenerateTPCH(cfg datagen.TPCHConfig) (map[string][]Row, error) {
	return datagen.TPCH(cfg)
}

// GenerateClicks produces the deterministic click-stream table.
func GenerateClicks(cfg datagen.ClickConfig) (map[string][]Row, error) {
	return datagen.Clickstream(cfg)
}

// Re-exported generator configuration types and defaults.
type (
	// TPCHConfig sizes the TPC-H generator.
	TPCHConfig = datagen.TPCHConfig
	// ClickConfig sizes the click-stream generator.
	ClickConfig = datagen.ClickConfig
)

// Default generator configurations.
var (
	DefaultTPCH   = datagen.DefaultTPCH
	DefaultClicks = datagen.DefaultClicks
)

// OracleResult runs the query on the single-node pipelined executor — the
// correctness oracle and the paper's "ideal parallel DBMS" baseline.
func OracleResult(q *Query, cat Catalog, tables map[string][]Row) ([]Row, error) {
	db := dbms.NewDatabase()
	for name, rows := range tables {
		schema, ok := cat.Table(name)
		if !ok {
			return nil, fmt.Errorf("no schema for table %q", name)
		}
		db.Load(name, schema, rows)
	}
	res, err := dbms.Execute(q.root, db)
	if err != nil {
		return nil, err
	}
	return res.Rows, nil
}
