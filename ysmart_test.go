package ysmart_test

import (
	"strings"
	"testing"

	"ysmart"
)

// TestPublicAPIQuickstart drives the whole public surface the way the
// README's quickstart does.
func TestPublicAPIQuickstart(t *testing.T) {
	cat := ysmart.WorkloadCatalog()
	q, err := ysmart.Parse(ysmart.WorkloadQueries()["Q-AGG"], cat)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(q.ExplainPlan(), "Aggregate") {
		t.Errorf("plan missing aggregate:\n%s", q.ExplainPlan())
	}
	tr, err := q.Translate(ysmart.YSmart, ysmart.Options{QueryName: "api"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumJobs() != 1 {
		t.Errorf("jobs = %d, want 1", tr.NumJobs())
	}

	rt, err := ysmart.NewRuntime(ysmart.SmallCluster())
	if err != nil {
		t.Fatal(err)
	}
	clicks, err := ysmart.GenerateClicks(ysmart.DefaultClicks())
	if err != nil {
		t.Fatal(err)
	}
	rt.LoadTables(clicks)
	res, err := rt.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Errorf("result rows = %d, want 5 categories", len(res.Rows))
	}
	if res.Stats.TotalTime() <= 0 {
		t.Error("stats missing")
	}

	// The MapReduce result must match the oracle.
	oracle, err := ysmart.OracleResult(q, cat, clicks)
	if err != nil {
		t.Fatal(err)
	}
	if len(oracle) != len(res.Rows) {
		t.Errorf("oracle rows = %d, mr rows = %d", len(oracle), len(res.Rows))
	}
}

// TestCorrelationExplain covers the analysis entry point on the paper's
// flagship example.
func TestCorrelationExplain(t *testing.T) {
	q, err := ysmart.Parse(ysmart.WorkloadQueries()["Q17"], ysmart.WorkloadCatalog())
	if err != nil {
		t.Fatal(err)
	}
	report := q.ExplainCorrelations()
	for _, want := range []string{"AGG1", "JOIN1", "TC", "JFC"} {
		if !strings.Contains(report, want) {
			t.Errorf("correlation report missing %q:\n%s", want, report)
		}
	}
}

// TestModeComparison checks the headline claim end-to-end through the
// public API: YSmart uses fewer jobs and less simulated time than the
// one-to-one baseline on Q17.
func TestModeComparison(t *testing.T) {
	cat := ysmart.WorkloadCatalog()
	q, err := ysmart.Parse(ysmart.WorkloadQueries()["Q17"], cat)
	if err != nil {
		t.Fatal(err)
	}
	tpch, err := ysmart.GenerateTPCH(ysmart.DefaultTPCH())
	if err != nil {
		t.Fatal(err)
	}

	run := func(mode ysmart.Mode, name string) *ysmart.Result {
		tr, err := q.Translate(mode, ysmart.Options{QueryName: name})
		if err != nil {
			t.Fatal(err)
		}
		rt, err := ysmart.NewRuntime(ysmart.SmallCluster())
		if err != nil {
			t.Fatal(err)
		}
		rt.LoadTables(tpch)
		res, err := rt.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	ys := run(ysmart.YSmart, "cmp-ys")
	oto := run(ysmart.OneToOne, "cmp-oto")
	if len(ys.Stats.Jobs) >= len(oto.Stats.Jobs) {
		t.Errorf("ysmart jobs %d, one-to-one %d", len(ys.Stats.Jobs), len(oto.Stats.Jobs))
	}
	if ys.Stats.TotalTime() >= oto.Stats.TotalTime() {
		t.Errorf("ysmart %.0fs not faster than one-to-one %.0fs",
			ys.Stats.TotalTime(), oto.Stats.TotalTime())
	}
	if len(ys.Rows) != 1 || len(oto.Rows) != 1 {
		t.Fatalf("Q17 returns one row; got %d and %d", len(ys.Rows), len(oto.Rows))
	}
}
